//! Uniform bucket-grid spatial index.
//!
//! The measurement hot loop asks the same three questions thousands of
//! times per simulated tick: *k nearest cars to a client* (pingClient's
//! nearest-8), *nearest idle driver within a radius* (dispatch), and
//! *nearest car of a tier* (EWT). All were answered by scanning — and for
//! the nearest-k case fully sorting — every visible car. [`SpatialGrid`]
//! buckets points into uniform square cells (CSR layout: one flat index
//! array plus per-cell offsets) and answers those queries by expanding
//! ring search, visiting only the cells that can still matter.
//!
//! Queries are **exact**, not approximate: a ring is only ruled out once
//! the distance from the query point to the nearest unvisited cell
//! provably exceeds the current best (with ties resolved toward lower
//! insertion index, matching what a stable sort over the full scan would
//! produce — so swapping the scan for the grid changes no observable
//! output, bit for bit).
//!
//! Storage is structure-of-arrays: coordinates live in separate `xs`/`ys`
//! slabs so the ring scans stream over dense `f64` lanes, and the slabs
//! (plus the CSR arrays) are reused across [`SpatialGrid::rebuild`] calls
//! — a grid rebuilt every tick stops allocating once its capacity
//! high-water marks settle. Allocation-free `_into` query variants write
//! into caller-owned buffers ([`GridScratch`] holds the candidate
//! scratch), and [`SpatialGrid::k_nearest_and_l1_into`] fuses the two
//! per-tier pingClient questions into one ring expansion.

use crate::project::Meters;

/// Reusable candidate scratch for [`SpatialGrid::k_nearest_into`] and
/// [`SpatialGrid::k_nearest_and_l1_into`]. Owning it at the call site
/// (one per worker thread) keeps repeated queries allocation-free.
#[derive(Debug, Clone, Default)]
pub struct GridScratch {
    /// `(squared distance, insertion index)` candidates, sorted on demand.
    cands: Vec<(f64, u32)>,
}

impl GridScratch {
    /// An empty scratch; buffers grow to the working-set size on first use.
    pub fn new() -> Self {
        GridScratch::default()
    }
}

/// A point set bucketed into uniform square cells for fast proximity
/// queries. `T` is a per-point payload (e.g. a driver index); use `()`
/// when the insertion index itself is the answer.
#[derive(Debug, Clone)]
pub struct SpatialGrid<T> {
    cell_size: f64,
    origin: Meters,
    nx: usize,
    ny: usize,
    /// CSR offsets: cell `c` holds `cell_items[cell_start[c]..cell_start[c+1]]`.
    cell_start: Vec<u32>,
    /// Insertion indices grouped by cell, ascending within each cell.
    cell_items: Vec<u32>,
    /// Point x coordinates in insertion order (SoA lane).
    xs: Vec<f64>,
    /// Point y coordinates in insertion order (SoA lane).
    ys: Vec<f64>,
    /// Payloads in insertion order.
    payloads: Vec<T>,
}

impl<T> SpatialGrid<T> {
    /// An empty grid ready to be [`SpatialGrid::rebuild`]-ed in place
    /// (the arena form: keep one per tier, rebuild it every tick).
    pub fn empty() -> Self {
        SpatialGrid {
            cell_size: 100.0,
            origin: Meters::new(0.0, 0.0),
            nx: 0,
            ny: 0,
            cell_start: vec![0],
            cell_items: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            payloads: Vec::new(),
        }
    }

    /// Builds a grid over `items` with square cells of `cell_size` metres.
    /// The cell size is doubled as needed so the cell count stays
    /// proportional to the point count (outlier-stretched bounding boxes
    /// cannot blow up memory).
    pub fn build(items: Vec<(Meters, T)>, cell_size: f64) -> Self {
        let mut g = Self::empty();
        g.rebuild(items.into_iter(), cell_size);
        g
    }

    /// Builds with a density-derived cell size: roughly one point per
    /// cell, clamped to a sane metric range.
    pub fn build_auto(items: Vec<(Meters, T)>) -> Self {
        let cell = auto_cell_size(items.iter().map(|(p, _)| *p));
        Self::build(items, cell)
    }

    /// Re-indexes the grid over a fresh point set **in place**, reusing
    /// every internal buffer (SoA slabs, CSR arrays). Steady-state
    /// rebuilds perform zero heap allocation once capacities have grown
    /// to the working set. Semantically identical to `build`.
    pub fn rebuild(&mut self, items: impl Iterator<Item = (Meters, T)>, cell_size: f64) {
        assert!(cell_size > 0.0 && cell_size.is_finite(), "bad cell size {cell_size}");
        self.xs.clear();
        self.ys.clear();
        self.payloads.clear();
        for (p, t) in items {
            self.xs.push(p.x);
            self.ys.push(p.y);
            self.payloads.push(t);
        }
        let n = self.xs.len();
        self.cell_size = cell_size;
        if n == 0 {
            self.origin = Meters::new(0.0, 0.0);
            self.nx = 0;
            self.ny = 0;
            self.cell_start.clear();
            self.cell_start.push(0);
            self.cell_items.clear();
            return;
        }

        let (mut min_x, mut min_y) = (self.xs[0], self.ys[0]);
        let (mut max_x, mut max_y) = (self.xs[0], self.ys[0]);
        for i in 1..n {
            min_x = min_x.min(self.xs[i]);
            min_y = min_y.min(self.ys[i]);
            max_x = max_x.max(self.xs[i]);
            max_y = max_y.max(self.ys[i]);
        }

        let max_cells = (4 * n).max(1_024);
        let mut cell_size = cell_size;
        let (nx, ny) = loop {
            let nx = ((max_x - min_x) / cell_size) as usize + 1;
            let ny = ((max_y - min_y) / cell_size) as usize + 1;
            if nx.saturating_mul(ny) <= max_cells {
                break (nx, ny);
            }
            cell_size *= 2.0;
        };
        self.cell_size = cell_size;
        self.origin = Meters::new(min_x, min_y);
        self.nx = nx;
        self.ny = ny;

        // Counting sort into cells; iterating in insertion order keeps
        // each cell's item list ascending (the tie-break invariant). The
        // start offsets double as placement cursors, then shift back —
        // no separate cursor array to allocate.
        let cell_of = |x: f64, y: f64| {
            let ix = (((x - min_x) / cell_size) as usize).min(nx - 1);
            let iy = (((y - min_y) / cell_size) as usize).min(ny - 1);
            iy * nx + ix
        };
        let ncells = nx * ny;
        self.cell_start.clear();
        // Reserve to the `max_cells` cap, not just `ncells`: the actual
        // cell count follows the points' bounding-box shape, so sizing to
        // it would let an unusually elongated frame force a realloc long
        // after the point-count high-water mark stopped moving.
        self.cell_start.reserve(max_cells + 1);
        self.cell_start.resize(ncells + 1, 0);
        for i in 0..n {
            self.cell_start[cell_of(self.xs[i], self.ys[i]) + 1] += 1;
        }
        for c in 1..self.cell_start.len() {
            self.cell_start[c] += self.cell_start[c - 1];
        }
        self.cell_items.clear();
        self.cell_items.resize(n, 0);
        for i in 0..n {
            let c = cell_of(self.xs[i], self.ys[i]);
            self.cell_items[self.cell_start[c] as usize] = i as u32;
            self.cell_start[c] += 1;
        }
        // Each start has advanced to its cell's end == the next start.
        for c in (1..=ncells).rev() {
            self.cell_start[c] = self.cell_start[c - 1];
        }
        self.cell_start[0] = 0;
    }

    /// In-place variant of [`SpatialGrid::build_auto`]; `items` is
    /// consumed twice (once for the density estimate, once to fill).
    pub fn rebuild_auto(&mut self, items: impl Iterator<Item = (Meters, T)> + Clone) {
        let cell = auto_cell_size(items.clone().map(|(p, _)| p));
        self.rebuild(items, cell);
    }

    /// Reserves capacity for indexing up to `n` points without further
    /// allocation: the coordinate slabs, payloads and item list size to
    /// `n`, and the cell table to the `max_cells` cap `rebuild` would
    /// derive from `n` points. Lets a caller with a known fleet-wide
    /// high-water mark make every later `rebuild` allocation-free.
    pub fn reserve(&mut self, n: usize) {
        self.xs.reserve(n);
        self.ys.reserve(n);
        self.payloads.reserve(n);
        self.cell_items.reserve(n);
        self.cell_start.reserve((4 * n).max(1_024) + 1);
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Position of the point with insertion index `i`.
    pub fn point(&self, i: usize) -> Meters {
        Meters::new(self.xs[i], self.ys[i])
    }

    /// Payload of the point with insertion index `i`.
    pub fn payload(&self, i: usize) -> &T {
        &self.payloads[i]
    }

    /// The (possibly adjusted) cell edge length in metres.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Squared Euclidean distance from point `i` to `pos` — bit-identical
    /// to `Meters::dist2` (same subtraction/FMA-free op order).
    #[inline]
    fn dist2_to(&self, i: usize, pos: Meters) -> f64 {
        let dx = self.xs[i] - pos.x;
        let dy = self.ys[i] - pos.y;
        dx * dx + dy * dy
    }

    fn center_cell(&self, pos: Meters) -> (usize, usize) {
        let fx = (pos.x - self.origin.x) / self.cell_size;
        let fy = (pos.y - self.origin.y) / self.cell_size;
        let cx = if fx <= 0.0 { 0 } else { (fx as usize).min(self.nx - 1) };
        let cy = if fy <= 0.0 { 0 } else { (fy as usize).min(self.ny - 1) };
        (cx, cy)
    }

    /// Calls `f` with the item slice of every in-bounds cell on Chebyshev
    /// ring `r` around `(cx, cy)`.
    fn for_ring_cells(&self, cx: usize, cy: usize, r: usize, mut f: impl FnMut(&[u32])) {
        let slice = |ix: usize, iy: usize| {
            let c = iy * self.nx + ix;
            &self.cell_items[self.cell_start[c] as usize..self.cell_start[c + 1] as usize]
        };
        if r == 0 {
            f(slice(cx, cy));
            return;
        }
        let (cx, cy, r) = (cx as i64, cy as i64, r as i64);
        let x_lo = (cx - r).max(0);
        let x_hi = (cx + r).min(self.nx as i64 - 1);
        // Top and bottom rows of the ring.
        for iy in [cy - r, cy + r] {
            if (0..self.ny as i64).contains(&iy) {
                for ix in x_lo..=x_hi {
                    f(slice(ix as usize, iy as usize));
                }
            }
        }
        // Left and right columns, excluding the corners already visited.
        let y_lo = (cy - r + 1).max(0);
        let y_hi = (cy + r - 1).min(self.ny as i64 - 1);
        for ix in [cx - r, cx + r] {
            if (0..self.nx as i64).contains(&ix) {
                for iy in y_lo..=y_hi {
                    f(slice(ix as usize, iy as usize));
                }
            }
        }
    }

    /// After visiting rings `0..=r` around `(cx, cy)`: the smallest
    /// possible distance (valid for both L2 and L1 — leaving an
    /// axis-aligned box means crossing one side) from `pos` to any
    /// unvisited in-grid cell. `None` means every cell has been visited.
    fn next_ring_bound(&self, pos: Meters, cx: usize, cy: usize, r: usize) -> Option<f64> {
        let (cx, cy, r) = (cx as i64, cy as i64, r as i64);
        let mut bound = f64::INFINITY;
        let mut any = false;
        if cx - r > 0 {
            any = true;
            bound = bound.min(pos.x - (self.origin.x + (cx - r) as f64 * self.cell_size));
        }
        if cx + r + 1 < self.nx as i64 {
            any = true;
            bound = bound.min(self.origin.x + (cx + r + 1) as f64 * self.cell_size - pos.x);
        }
        if cy - r > 0 {
            any = true;
            bound = bound.min(pos.y - (self.origin.y + (cy - r) as f64 * self.cell_size));
        }
        if cy + r + 1 < self.ny as i64 {
            any = true;
            bound = bound.min(self.origin.y + (cy + r + 1) as f64 * self.cell_size - pos.y);
        }
        any.then(|| bound.max(0.0))
    }

    /// Insertion indices of the `k` points nearest to `pos` (Euclidean),
    /// ordered by `(distance, insertion index)` — exactly what a stable
    /// sort of all points by distance would yield.
    pub fn k_nearest(&self, pos: Meters, k: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.k_nearest_into(pos, k, &mut GridScratch::new(), &mut out);
        out
    }

    /// Allocation-free [`SpatialGrid::k_nearest`]: clears `out` and fills
    /// it with the same indices, using `scratch` for candidates.
    pub fn k_nearest_into(
        &self,
        pos: Meters,
        k: usize,
        scratch: &mut GridScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        self.k_nearest_and_l1_core(pos, k, false, scratch, out);
    }

    /// Fused per-tier kernel: one ring expansion answering both of
    /// pingClient's questions — the `k` nearest points by Euclidean
    /// distance (into `out`, same order as [`SpatialGrid::k_nearest`])
    /// *and* the unbounded L1-nearest point (returned, same answer as
    /// `nearest_l1(pos, |_| true)`). Visiting the union of the rings
    /// either query alone would visit changes neither answer (both are
    /// exact over all visited candidates), so the fusion is
    /// byte-identical to two separate calls.
    pub fn k_nearest_and_l1_into(
        &self,
        pos: Meters,
        k: usize,
        scratch: &mut GridScratch,
        out: &mut Vec<usize>,
    ) -> Option<(usize, f64)> {
        out.clear();
        self.k_nearest_and_l1_core(pos, k, true, scratch, out)
    }

    fn k_nearest_and_l1_core(
        &self,
        pos: Meters,
        k: usize,
        want_l1: bool,
        scratch: &mut GridScratch,
        out: &mut Vec<usize>,
    ) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let (cx, cy) = self.center_cell(pos);
        let cands = &mut scratch.cands;
        cands.clear();
        let mut best_l1: Option<(f64, u32)> = None;
        // Each query keeps its own done-flag; rings expand until both are
        // satisfied (the k-nearest side is vacuously done for k == 0).
        let mut k_done = k == 0;
        let mut l1_done = !want_l1;
        let mut r = 0;
        loop {
            self.for_ring_cells(cx, cy, r, |items| {
                for &i in items {
                    if !k_done {
                        cands.push((self.dist2_to(i as usize, pos), i));
                    }
                    if want_l1 {
                        let dist = (self.xs[i as usize] - pos.x).abs()
                            + (self.ys[i as usize] - pos.y).abs();
                        if best_l1.is_none_or(|(bd, bi)| dist < bd || (dist == bd && i < bi)) {
                            best_l1 = Some((dist, i));
                        }
                    }
                }
            });
            let Some(lb) = self.next_ring_bound(pos, cx, cy, r) else { break };
            if !k_done && cands.len() >= k {
                cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                // A later ring can still matter on an exact tie (a
                // same-distance point with a lower insertion index), so
                // only stop on a strict improvement margin.
                if lb * lb > cands[k - 1].0 {
                    k_done = true;
                }
            }
            // Same margin logic for the L1 side: stop only once no
            // unvisited cell can beat (or tie) the best.
            if !l1_done && best_l1.is_some_and(|(bd, _)| lb > bd) {
                l1_done = true;
            }
            if k_done && l1_done {
                break;
            }
            r += 1;
        }
        if k > 0 {
            cands.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            cands.truncate(k);
            out.extend(cands.iter().map(|&(_, i)| i as usize));
        }
        best_l1.map(|(d, i)| (i as usize, d))
    }

    /// Insertion indices of all points within `radius` of `pos`
    /// (Euclidean, inclusive), in ascending insertion order.
    pub fn within_radius(&self, pos: Meters, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_radius_into(pos, radius, &mut out);
        out
    }

    /// Allocation-free [`SpatialGrid::within_radius`]: clears `out` and
    /// fills it with the same indices.
    pub fn within_radius_into(&self, pos: Meters, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if self.is_empty() || radius < 0.0 {
            return;
        }
        let (cx, cy) = self.center_cell(pos);
        let r2 = radius * radius;
        let mut r = 0;
        loop {
            self.for_ring_cells(cx, cy, r, |items| {
                for &i in items {
                    if self.dist2_to(i as usize, pos) <= r2 {
                        out.push(i as usize);
                    }
                }
            });
            match self.next_ring_bound(pos, cx, cy, r) {
                Some(lb) if lb <= radius => r += 1,
                _ => break,
            }
        }
        out.sort_unstable();
    }

    /// The point minimizing `(L1 distance to pos, insertion index)`
    /// among those within `max_dist` (inclusive) that pass `filter`,
    /// as `(insertion index, L1 distance)`.
    ///
    /// The L1 metric matches the city model's rectilinear drive metric,
    /// and the lexicographic tie-break reproduces a first-strictly-less
    /// linear scan in insertion order. Already allocation-free — the
    /// caller-buffer discipline of the `_into` variants needs no separate
    /// entry point here.
    pub fn nearest_l1_within(
        &self,
        pos: Meters,
        max_dist: f64,
        mut filter: impl FnMut(&T) -> bool,
    ) -> Option<(usize, f64)> {
        if self.is_empty() {
            return None;
        }
        let (cx, cy) = self.center_cell(pos);
        let mut best: Option<(f64, u32)> = None;
        let mut r = 0;
        loop {
            self.for_ring_cells(cx, cy, r, |items| {
                for &i in items {
                    let dist = (self.xs[i as usize] - pos.x).abs()
                        + (self.ys[i as usize] - pos.y).abs();
                    if dist <= max_dist
                        && best.is_none_or(|(bd, bi)| dist < bd || (dist == bd && i < bi))
                        && filter(&self.payloads[i as usize])
                    {
                        best = Some((dist, i));
                    }
                }
            });
            let Some(lb) = self.next_ring_bound(pos, cx, cy, r) else { break };
            // Stop once no unvisited cell can beat (or tie) the best, or
            // can lie within the radius at all.
            if lb > max_dist || best.is_some_and(|(bd, _)| lb > bd) {
                break;
            }
            r += 1;
        }
        best.map(|(d, i)| (i as usize, d))
    }

    /// Unbounded variant of [`SpatialGrid::nearest_l1_within`].
    pub fn nearest_l1(
        &self,
        pos: Meters,
        filter: impl FnMut(&T) -> bool,
    ) -> Option<(usize, f64)> {
        self.nearest_l1_within(pos, f64::INFINITY, filter)
    }
}

/// Density-derived cell size for a point set: edge of a square holding
/// one point on average, clamped to `[50, 1500]` metres (city scales).
pub fn auto_cell_size(points: impl Iterator<Item = Meters>) -> f64 {
    let mut n = 0usize;
    let mut min = Meters::new(f64::INFINITY, f64::INFINITY);
    let mut max = Meters::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        n += 1;
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    if n == 0 {
        return 100.0;
    }
    let area = (max.x - min.x).max(1.0) * (max.y - min.y).max(1.0);
    (area / n as f64).sqrt().clamp(50.0, 1_500.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn brute_k(points: &[Meters], pos: Meters, k: usize) -> Vec<usize> {
        let mut v: Vec<(f64, usize)> =
            points.iter().enumerate().map(|(i, p)| (p.dist2(pos), i)).collect();
        // Stable sort: ties stay in insertion order, the contract the
        // grid must reproduce.
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v.truncate(k);
        v.into_iter().map(|(_, i)| i).collect()
    }

    pub(super) fn brute_radius(points: &[Meters], pos: Meters, radius: f64) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist2(pos) <= radius * radius)
            .map(|(i, _)| i)
            .collect()
    }

    pub(super) fn brute_l1(points: &[Meters], pos: Meters, max_dist: f64) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in points.iter().enumerate() {
            let dist = (p.x - pos.x).abs() + (p.y - pos.y).abs();
            if dist <= max_dist && best.is_none_or(|(_, bd)| dist < bd) {
                best = Some((i, dist));
            }
        }
        best
    }

    fn grid_of(points: &[Meters], cell: f64) -> SpatialGrid<()> {
        SpatialGrid::build(points.iter().map(|p| (*p, ())).collect(), cell)
    }

    #[test]
    fn empty_grid_answers_empty() {
        let g: SpatialGrid<u32> = SpatialGrid::build(Vec::new(), 100.0);
        assert!(g.is_empty());
        assert!(g.k_nearest(Meters::new(3.0, 4.0), 5).is_empty());
        assert!(g.within_radius(Meters::new(3.0, 4.0), 1e9).is_empty());
        assert!(g.nearest_l1(Meters::new(3.0, 4.0), |_| true).is_none());
    }

    #[test]
    fn single_point_found_from_anywhere() {
        let pts = [Meters::new(10.0, -20.0)];
        let g = grid_of(&pts, 100.0);
        for pos in [Meters::new(0.0, 0.0), Meters::new(-9e5, 7e5), pts[0]] {
            assert_eq!(g.k_nearest(pos, 3), vec![0]);
            assert_eq!(g.nearest_l1(pos, |_| true).map(|(i, _)| i), Some(0));
        }
    }

    #[test]
    fn ties_resolve_to_lowest_insertion_index() {
        // Four coincident points plus a nearer singleton.
        let pts = [
            Meters::new(100.0, 0.0),
            Meters::new(100.0, 0.0),
            Meters::new(50.0, 0.0),
            Meters::new(100.0, 0.0),
            Meters::new(100.0, 0.0),
        ];
        let g = grid_of(&pts, 30.0);
        let pos = Meters::new(0.0, 0.0);
        assert_eq!(g.k_nearest(pos, 3), vec![2, 0, 1]);
        assert_eq!(g.nearest_l1(pos, |_| true), Some((2, 50.0)));
        // Filter away the singleton: the tie among the rest goes to
        // insertion index 0.
        let g2 = SpatialGrid::build(
            pts.iter().enumerate().map(|(i, p)| (*p, i)).collect(),
            30.0,
        );
        assert_eq!(g2.nearest_l1(pos, |&i| i != 2), Some((0, 100.0)));
    }

    #[test]
    fn radius_is_inclusive() {
        let pts = [Meters::new(300.0, 400.0), Meters::new(301.0, 400.0)];
        let g = grid_of(&pts, 120.0);
        // dist to pts[0] is exactly 500.
        assert_eq!(g.within_radius(Meters::new(0.0, 0.0), 500.0), vec![0]);
        assert_eq!(g.nearest_l1_within(Meters::new(0.0, 0.0), 700.0, |_| true), Some((0, 700.0)));
        assert_eq!(g.nearest_l1_within(Meters::new(0.0, 0.0), 699.0, |_| true), None);
    }

    #[test]
    fn degenerate_cell_size_is_rescued() {
        // A millimetre cell over a 10 km span would want 10^14 cells;
        // the builder must coarsen instead of allocating that.
        let pts: Vec<Meters> =
            (0..100).map(|i| Meters::new(i as f64 * 100.0, 0.0)).collect();
        let g = grid_of(&pts, 0.001);
        assert!(g.cell_size() > 0.001);
        assert_eq!(g.k_nearest(Meters::new(4_321.0, 5.0), 1), brute_k(&pts, Meters::new(4_321.0, 5.0), 1));
    }

    #[test]
    fn matches_brute_force_on_a_lattice_with_duplicates() {
        // Points exactly on cell boundaries, including duplicates.
        let mut pts = Vec::new();
        for x in 0..12 {
            for y in 0..12 {
                pts.push(Meters::new(x as f64 * 100.0, y as f64 * 100.0));
            }
        }
        pts.extend_from_slice(&pts.clone()[..40]);
        let g = grid_of(&pts, 100.0);
        for pos in [
            Meters::new(0.0, 0.0),
            Meters::new(550.0, 550.0),
            Meters::new(600.0, 600.0), // exactly on a lattice point
            Meters::new(-250.0, 1_800.0), // outside the bbox
        ] {
            assert_eq!(g.k_nearest(pos, 10), brute_k(&pts, pos, 10), "pos {pos:?}");
            assert_eq!(g.within_radius(pos, 250.0), brute_radius(&pts, pos, 250.0));
            assert_eq!(
                g.nearest_l1(pos, |_| true).map(|(i, d)| (i, d)),
                brute_l1(&pts, pos, f64::INFINITY)
            );
        }
    }

    /// Tiny deterministic PRNG for the seeded equivalence sweeps (the geo
    /// crate deliberately has no RNG dependency).
    pub(super) struct XorShift(u64);
    impl XorShift {
        pub(super) fn new(seed: u64) -> Self {
            XorShift(seed.max(1))
        }
        pub(super) fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        /// Uniform in `[lo, hi)`, coarsely quantized (ties on purpose).
        pub(super) fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let v = lo + u * (hi - lo);
            (v / 50.0).round() * 50.0
        }
    }

    /// Satellite contract: every `_into` variant (and the fused kernel)
    /// returns byte-identical results to its allocating counterpart,
    /// across 3 seeds × mixed radii/k, with scratch and output buffers
    /// reused across queries — and an in-place `rebuild` answers exactly
    /// like a fresh `build`.
    #[test]
    fn into_variants_match_allocating_counterparts_across_seeds() {
        let mut scratch = GridScratch::new();
        let mut out_k = Vec::new();
        let mut out_r = Vec::new();
        let mut reused: SpatialGrid<usize> = SpatialGrid::empty();
        for seed in [2026u64, 777, 0xDEAD] {
            let mut rng = XorShift::new(seed);
            for round in 0..12 {
                let n = (rng.next_u64() % 150) as usize;
                let pts: Vec<Meters> = (0..n)
                    .map(|_| Meters::new(rng.f64_in(-2_500.0, 2_500.0), rng.f64_in(-2_500.0, 2_500.0)))
                    .collect();
                let cell = 40.0 + (rng.next_u64() % 400) as f64;
                let g = SpatialGrid::build(
                    pts.iter().enumerate().map(|(i, p)| (*p, i)).collect(),
                    cell,
                );
                reused.rebuild(pts.iter().enumerate().map(|(i, p)| (*p, i)), cell);
                for _ in 0..8 {
                    let pos =
                        Meters::new(rng.f64_in(-3_000.0, 3_000.0), rng.f64_in(-3_000.0, 3_000.0));
                    let k = (rng.next_u64() % 12) as usize;
                    let radius = (rng.next_u64() % 2_500) as f64;

                    let alloc_k = g.k_nearest(pos, k);
                    g.k_nearest_into(pos, k, &mut scratch, &mut out_k);
                    assert_eq!(out_k, alloc_k, "k_nearest_into seed {seed} round {round}");
                    reused.k_nearest_into(pos, k, &mut scratch, &mut out_k);
                    assert_eq!(out_k, alloc_k, "rebuilt grid k_nearest seed {seed}");

                    let l1 = g.k_nearest_and_l1_into(pos, k, &mut scratch, &mut out_k);
                    assert_eq!(out_k, alloc_k, "fused k side seed {seed} round {round}");
                    assert_eq!(
                        l1.map(|(i, d)| (i, d.to_bits())),
                        g.nearest_l1(pos, |_| true).map(|(i, d)| (i, d.to_bits())),
                        "fused l1 side seed {seed} round {round}"
                    );

                    let alloc_r = g.within_radius(pos, radius);
                    g.within_radius_into(pos, radius, &mut out_r);
                    assert_eq!(out_r, alloc_r, "within_radius_into seed {seed} round {round}");
                    reused.within_radius_into(pos, radius, &mut out_r);
                    assert_eq!(out_r, alloc_r, "rebuilt grid within_radius seed {seed}");
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::*;
    use super::*;
    use proptest::prelude::*;

    // Snapped coordinates land points exactly on cell boundaries and
    // create duplicates — the tie-break and edge cases that matter.
    fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Meters>> {
        proptest::collection::vec((-2_000.0f64..2_000.0, -2_000.0f64..2_000.0), 0..max_len)
            .prop_map(|v| {
                v.into_iter()
                    .map(|(x, y)| Meters::new((x / 100.0).round() * 100.0, (y / 100.0).round() * 100.0))
                    .collect()
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn k_nearest_matches_stable_sort(
            pts in arb_points(120),
            qx in -3_000.0f64..3_000.0,
            qy in -3_000.0f64..3_000.0,
            k in 0usize..12,
            cell in 40.0f64..400.0,
        ) {
            let g = SpatialGrid::build(pts.iter().map(|p| (*p, ())).collect::<Vec<_>>(), cell);
            let pos = Meters::new(qx, qy);
            prop_assert_eq!(g.k_nearest(pos, k), brute_k(&pts, pos, k));
        }

        #[test]
        fn radius_matches_brute_scan(
            pts in arb_points(120),
            qx in -3_000.0f64..3_000.0,
            qy in -3_000.0f64..3_000.0,
            radius in 0.0f64..2_500.0,
            cell in 40.0f64..400.0,
        ) {
            let g = SpatialGrid::build(pts.iter().map(|p| (*p, ())).collect::<Vec<_>>(), cell);
            let pos = Meters::new(qx, qy);
            prop_assert_eq!(g.within_radius(pos, radius), brute_radius(&pts, pos, radius));
        }

        #[test]
        fn nearest_l1_matches_first_min_scan(
            pts in arb_points(120),
            qx in -3_000.0f64..3_000.0,
            qy in -3_000.0f64..3_000.0,
            max_dist in 0.0f64..4_000.0,
            cell in 40.0f64..400.0,
        ) {
            let g = SpatialGrid::build(pts.iter().map(|p| (*p, ())).collect::<Vec<_>>(), cell);
            let pos = Meters::new(qx, qy);
            prop_assert_eq!(
                g.nearest_l1_within(pos, max_dist, |_| true),
                brute_l1(&pts, pos, max_dist)
            );
        }

        /// The fused ring expansion visits the union of the rings either
        /// query alone would visit; both answers must stay byte-identical
        /// to their standalone counterparts on arbitrary inputs.
        #[test]
        fn fused_kernel_matches_separate_queries(
            pts in arb_points(120),
            qx in -3_000.0f64..3_000.0,
            qy in -3_000.0f64..3_000.0,
            k in 0usize..12,
            cell in 40.0f64..400.0,
        ) {
            let g = SpatialGrid::build(pts.iter().map(|p| (*p, ())).collect::<Vec<_>>(), cell);
            let pos = Meters::new(qx, qy);
            let mut scratch = GridScratch::new();
            let mut out = Vec::new();
            let l1 = g.k_nearest_and_l1_into(pos, k, &mut scratch, &mut out);
            prop_assert_eq!(out, brute_k(&pts, pos, k));
            prop_assert_eq!(
                l1.map(|(i, d)| (i, d.to_bits())),
                brute_l1(&pts, pos, f64::INFINITY).map(|(i, d)| (i, d.to_bits()))
            );
        }
    }
}
