//! WGS-84 coordinates and spherical distance.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 geographic coordinate (degrees).
///
/// The measurement methodology controls the latitude/longitude reported by
/// each emulated client, so this type is the currency of the whole system:
/// clients ping from a `LatLng`, cars are observed at a `LatLng`, and the
/// API endpoints take a `LatLng` as input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLng {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lng: f64,
}

impl LatLng {
    /// Creates a coordinate from degrees. Panics on non-finite input —
    /// coordinates always originate from our own generators, so a NaN here
    /// is a programming error, not bad network data.
    pub fn new(lat: f64, lng: f64) -> Self {
        assert!(lat.is_finite() && lng.is_finite(), "non-finite coordinate");
        assert!((-90.0..=90.0).contains(&lat), "latitude out of range: {lat}");
        LatLng { lat, lng }
    }

    /// Great-circle distance in metres to `other`.
    pub fn dist_m(self, other: LatLng) -> f64 {
        haversine_m(self, other)
    }

    /// Moves this point `distance_m` metres along `bearing_deg` (clockwise
    /// from north) using a local planar approximation. Exact enough for the
    /// ≤ tens-of-kilometres scales this library works at (error < 0.01%).
    pub fn translate(self, bearing_deg: f64, distance_m: f64) -> LatLng {
        let theta = bearing_deg.to_radians();
        let dnorth = distance_m * theta.cos();
        let deast = distance_m * theta.sin();
        self.offset_m(deast, dnorth)
    }

    /// Moves this point by planar offsets in metres (east, north).
    pub fn offset_m(self, east_m: f64, north_m: f64) -> LatLng {
        let dlat = (north_m / EARTH_RADIUS_M).to_degrees();
        let dlng = (east_m / (EARTH_RADIUS_M * self.lat.to_radians().cos())).to_degrees();
        LatLng::new((self.lat + dlat).clamp(-90.0, 90.0), self.lng + dlng)
    }

    /// Initial bearing (degrees clockwise from north, in `[0, 360)`) from
    /// this point toward `other`, using the local planar approximation.
    pub fn bearing_to(self, other: LatLng) -> f64 {
        let mean_lat = ((self.lat + other.lat) / 2.0).to_radians();
        let deast = (other.lng - self.lng).to_radians() * mean_lat.cos();
        let dnorth = (other.lat - self.lat).to_radians();
        let b = deast.atan2(dnorth).to_degrees();
        (b + 360.0) % 360.0
    }

    /// Linear interpolation between two points: `t = 0` is `self`,
    /// `t = 1` is `other`. Used by the replay engines that "drive" vehicles
    /// in a straight line between pickup and dropoff (paper §3.5).
    pub fn lerp(self, other: LatLng, t: f64) -> LatLng {
        LatLng::new(
            self.lat + (other.lat - self.lat) * t,
            self.lng + (other.lng - self.lng) * t,
        )
    }
}

/// Great-circle (haversine) distance between two coordinates, in metres.
pub fn haversine_m(a: LatLng, b: LatLng) -> f64 {
    let phi1 = a.lat.to_radians();
    let phi2 = b.lat.to_radians();
    let dphi = (b.lat - a.lat).to_radians();
    let dlambda = (b.lng - a.lng).to_radians();
    let s = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * s.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Times Square, used throughout as a Manhattan reference point.
    const TIMES_SQUARE: LatLng = LatLng { lat: 40.7580, lng: -73.9855 };
    /// Union Square SF.
    const UNION_SQUARE_SF: LatLng = LatLng { lat: 37.7880, lng: -122.4075 };

    #[test]
    fn known_distance_manhattan_to_sf() {
        // NYC to SF is about 4,130 km.
        let d = haversine_m(TIMES_SQUARE, UNION_SQUARE_SF);
        assert!((4_100_000.0..4_160_000.0).contains(&d), "got {d}");
    }

    #[test]
    fn small_distance_accuracy() {
        // One block north (~80 m) via translate.
        let p = TIMES_SQUARE.translate(0.0, 80.0);
        let d = haversine_m(TIMES_SQUARE, p);
        assert!((d - 80.0).abs() < 0.01, "got {d}");
    }

    #[test]
    fn translate_east_changes_only_lng() {
        let p = TIMES_SQUARE.translate(90.0, 100.0);
        assert!((p.lat - TIMES_SQUARE.lat).abs() < 1e-9);
        assert!(p.lng > TIMES_SQUARE.lng);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let n = TIMES_SQUARE.translate(0.0, 500.0);
        let e = TIMES_SQUARE.translate(90.0, 500.0);
        let s = TIMES_SQUARE.translate(180.0, 500.0);
        let w = TIMES_SQUARE.translate(270.0, 500.0);
        assert!(TIMES_SQUARE.bearing_to(n).abs() < 0.5);
        assert!((TIMES_SQUARE.bearing_to(e) - 90.0).abs() < 0.5);
        assert!((TIMES_SQUARE.bearing_to(s) - 180.0).abs() < 0.5);
        assert!((TIMES_SQUARE.bearing_to(w) - 270.0).abs() < 0.5);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = TIMES_SQUARE;
        let b = a.translate(45.0, 1000.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((haversine_m(a, mid) - 500.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn rejects_bad_latitude() {
        let _ = LatLng::new(123.0, 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&TIMES_SQUARE).unwrap();
        let back: LatLng = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TIMES_SQUARE);
    }
}
