//! Grid placement of measurement clients over a region.
//!
//! §3.4 of the paper: once the visibility radius `r` is known, clients are
//! placed on a square lattice so their visibility discs jointly cover the
//! measurement polygon without excessive overlap. A square lattice with
//! spacing `s = r·√2` gives exact disc cover of the plane (every point is
//! within `r` of a lattice point); the paper instead picks round spacings
//! (200 m in Manhattan, 350 m in SF) as a deliberate coverage/extent
//! trade-off, which we mirror.

use crate::polygon::Polygon;
use crate::project::Meters;

/// One client slot produced by [`cover_polygon`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSlot {
    /// Planar position of the client.
    pub position: Meters,
    /// Row index in the lattice (south to north).
    pub row: usize,
    /// Column index in the lattice (west to east).
    pub col: usize,
}

/// Covers `region` with a square lattice of the given `spacing_m`,
/// returning the lattice points that fall inside the polygon, in
/// row-major (south-west to north-east) order.
///
/// The lattice is inset by half a spacing from the bounding box so the
/// outermost clients sit inside rather than on the boundary.
pub fn cover_polygon(region: &Polygon, spacing_m: f64) -> Vec<GridSlot> {
    assert!(spacing_m > 0.0, "spacing must be positive");
    let bb = region.bbox();
    let mut out = Vec::new();
    let mut row = 0usize;
    let mut y = bb.min.y + spacing_m / 2.0;
    while y < bb.max.y {
        let mut col = 0usize;
        let mut x = bb.min.x + spacing_m / 2.0;
        while x < bb.max.x {
            let p = Meters::new(x, y);
            if region.contains(p) {
                out.push(GridSlot { position: p, row, col });
            }
            x += spacing_m;
            col += 1;
        }
        y += spacing_m;
        row += 1;
    }
    out
}

/// Spacing such that discs of radius `radius_m` centred on the lattice
/// cover the plane exactly (`r·√2`).
pub fn covering_spacing(radius_m: f64) -> f64 {
    radius_m * std::f64::consts::SQRT_2
}

/// The fraction of `region` (approximated on a fine sample lattice) within
/// `radius_m` of at least one of `clients`. Used by the calibration tests
/// to check a placement actually blankets the region.
pub fn coverage_fraction(region: &Polygon, clients: &[Meters], radius_m: f64) -> f64 {
    let bb = region.bbox();
    let step = (radius_m / 4.0).max(1.0);
    let r2 = radius_m * radius_m;
    let mut total = 0u64;
    let mut covered = 0u64;
    let mut y = bb.min.y + step / 2.0;
    while y < bb.max.y {
        let mut x = bb.min.x + step / 2.0;
        while x < bb.max.x {
            let p = Meters::new(x, y);
            if region.contains(p) {
                total += 1;
                if clients.iter().any(|c| c.dist2(p) <= r2) {
                    covered += 1;
                }
            }
            x += step;
        }
        y += step;
    }
    if total == 0 {
        return 0.0;
    }
    covered as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_km() -> Polygon {
        Polygon::rect(Meters::new(0.0, 0.0), Meters::new(1000.0, 1000.0))
    }

    #[test]
    fn grid_count_matches_spacing() {
        let slots = cover_polygon(&square_km(), 200.0);
        // 5×5 lattice inset by 100 m.
        assert_eq!(slots.len(), 25);
        assert_eq!(slots[0].position, Meters::new(100.0, 100.0));
        assert_eq!(slots.last().unwrap().position, Meters::new(900.0, 900.0));
    }

    #[test]
    fn all_slots_inside_region() {
        let region = square_km();
        for s in cover_polygon(&region, 137.0) {
            assert!(region.contains(s.position));
        }
    }

    #[test]
    fn covering_spacing_yields_full_coverage() {
        let region = square_km();
        let r = 200.0;
        let slots = cover_polygon(&region, covering_spacing(r));
        let pts: Vec<Meters> = slots.iter().map(|s| s.position).collect();
        let f = coverage_fraction(&region, &pts, r);
        assert!(f > 0.999, "coverage only {f}");
    }

    #[test]
    fn sparse_placement_undercovers() {
        let region = square_km();
        let slots = cover_polygon(&region, 500.0);
        let pts: Vec<Meters> = slots.iter().map(|s| s.position).collect();
        let f = coverage_fraction(&region, &pts, 100.0);
        assert!(f < 0.5, "sparse placement should not cover, got {f}");
    }

    #[test]
    fn row_major_ordering() {
        let slots = cover_polygon(&square_km(), 400.0);
        for w in slots.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(b.row > a.row || (b.row == a.row && b.col > a.col));
        }
    }
}
