//! Geographic primitives for city-scale measurement studies.
//!
//! This crate provides the small set of geometry the paper's methodology
//! needs: WGS-84 coordinates ([`LatLng`]), a local planar projection good to
//! centimetres at city scale ([`LocalProjection`]), polygons with
//! point-in-polygon and boundary-distance queries ([`Polygon`]), grid
//! placement of measurement clients over a polygon ([`grid`]), and the
//! per-car recent-movement trace ([`PathVector`]) that the pingClient
//! protocol exposes.
//!
//! Everything here is pure, deterministic and `f64`-based. Distances are in
//! metres, bearings in degrees clockwise from north.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamic;
mod latlng;
mod path;
mod polygon;
mod project;
mod spatial;

pub mod grid;

pub use dynamic::DynamicGrid;
pub use latlng::{haversine_m, LatLng, EARTH_RADIUS_M};
pub use path::PathVector;
pub use polygon::{BoundingBox, Polygon};
pub use project::{LocalProjection, Meters, Vec2};
pub use spatial::{auto_cell_size, GridScratch, SpatialGrid};

/// Mean walking speed assumed by the surge-avoidance strategy (§6 of the
/// paper): 5 km/h ≈ 83 m per minute.
pub const WALKING_SPEED_M_PER_MIN: f64 = 83.0;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_latlng() -> impl Strategy<Value = LatLng> {
        // Stay away from the poles and the antimeridian where the local
        // projection assumptions (and haversine precision) degrade.
        (-60.0f64..60.0, -179.0f64..179.0).prop_map(|(lat, lng)| LatLng::new(lat, lng))
    }

    proptest! {
        #[test]
        fn haversine_symmetric(a in arb_latlng(), b in arb_latlng()) {
            let ab = haversine_m(a, b);
            let ba = haversine_m(b, a);
            prop_assert!((ab - ba).abs() < 1e-6 * ab.max(1.0));
        }

        #[test]
        fn haversine_nonnegative_and_zero_iff_equal(a in arb_latlng()) {
            prop_assert_eq!(haversine_m(a, a), 0.0);
        }

        #[test]
        fn haversine_triangle_inequality(a in arb_latlng(), b in arb_latlng(), c in arb_latlng()) {
            let ab = haversine_m(a, b);
            let bc = haversine_m(b, c);
            let ac = haversine_m(a, c);
            // Spherical metric satisfies the triangle inequality exactly;
            // leave slack for floating point.
            prop_assert!(ac <= ab + bc + 1e-6 * (ab + bc + 1.0));
        }

        #[test]
        fn translate_roundtrip(a in arb_latlng(), d in 0.0f64..5_000.0, bearing in 0.0f64..360.0) {
            let b = a.translate(bearing, d);
            let measured = haversine_m(a, b);
            // At city scale the planar translate agrees with the spherical
            // metric to well under 1%.
            prop_assert!((measured - d).abs() <= 0.01 * d + 0.5,
                "translate {d}m measured {measured}m");
        }

        #[test]
        fn projection_roundtrip(origin in arb_latlng(), d in 0.0f64..10_000.0, bearing in 0.0f64..360.0) {
            let proj = LocalProjection::new(origin);
            let p = origin.translate(bearing, d);
            let xy = proj.to_meters(p);
            let back = proj.to_latlng(xy);
            prop_assert!(haversine_m(p, back) < 0.5, "roundtrip error too large");
        }

        #[test]
        fn projection_distance_close_to_haversine(origin in arb_latlng(),
                                                  d1 in 0.0f64..5_000.0, b1 in 0.0f64..360.0,
                                                  d2 in 0.0f64..5_000.0, b2 in 0.0f64..360.0) {
            let proj = LocalProjection::new(origin);
            let p = origin.translate(b1, d1);
            let q = origin.translate(b2, d2);
            let planar = proj.to_meters(p).dist(proj.to_meters(q));
            let sphere = haversine_m(p, q);
            prop_assert!((planar - sphere).abs() <= 0.01 * sphere + 1.0);
        }
    }
}
