//! Per-car recent-movement traces ("path vectors").
//!
//! Each car in a pingClient response carries a short trace of its recent
//! positions (§3.3). The paper uses these to disambiguate cars that left
//! the measurement area (an *outbound* path near the boundary) from cars
//! that picked up a passenger or went offline.

use crate::latlng::LatLng;
use crate::polygon::Polygon;
use crate::project::{LocalProjection, Meters};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded FIFO of a car's recent positions, most recent last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathVector {
    points: VecDeque<LatLng>,
    capacity: usize,
}

impl PathVector {
    /// Creates an empty path with the given capacity (the protocol sends
    /// the last few positions; the real app shows a short trail).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "a path needs at least 2 points to have a direction");
        PathVector { points: VecDeque::with_capacity(capacity), capacity }
    }

    /// Appends a position, evicting the oldest if at capacity.
    pub fn push(&mut self, p: LatLng) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(p);
    }

    /// Positions oldest-to-newest.
    pub fn points(&self) -> impl Iterator<Item = LatLng> + '_ {
        self.points.iter().copied()
    }

    /// Most recent position, if any.
    pub fn last(&self) -> Option<LatLng> {
        self.points.back().copied()
    }

    /// Number of stored positions.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no positions are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Net displacement (metres east/north) from the oldest to the newest
    /// stored point, or `None` with fewer than 2 points.
    pub fn displacement(&self, proj: &LocalProjection) -> Option<Meters> {
        if self.points.len() < 2 {
            return None;
        }
        let first = proj.to_meters(*self.points.front().unwrap());
        let last = proj.to_meters(*self.points.back().unwrap());
        Some(last.sub(first))
    }

    /// Heuristic from the paper's edge filter: does this path look like the
    /// car was *leaving* the measurement region? True when the most recent
    /// point is within `margin_m` of the boundary and the net displacement
    /// points toward (decreases distance to) the boundary.
    pub fn heading_out_of(&self, region: &Polygon, proj: &LocalProjection, margin_m: f64) -> bool {
        let Some(last) = self.last() else { return false };
        let last_m = proj.to_meters(last);
        if region.distance_to_boundary(last_m) > margin_m {
            return false;
        }
        match self.displacement(proj) {
            Some(d) if d.norm() > 1.0 => {
                let first_m = last_m.sub(d);
                // Moving closer to the boundary (or already outside).
                !region.contains(last_m)
                    || region.distance_to_boundary(last_m)
                        < region.distance_to_boundary(first_m)
            }
            // A parked car near the edge is not "heading out".
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Polygon, LocalProjection) {
        let origin = LatLng::new(40.75, -73.98);
        let proj = LocalProjection::new(origin);
        let region = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(2000.0, 2000.0));
        (region, proj)
    }

    fn at(proj: &LocalProjection, x: f64, y: f64) -> LatLng {
        proj.to_latlng(Meters::new(x, y))
    }

    #[test]
    fn bounded_capacity() {
        let (_, proj) = setup();
        let mut pv = PathVector::new(3);
        for i in 0..10 {
            pv.push(at(&proj, i as f64 * 10.0, 0.0));
        }
        assert_eq!(pv.len(), 3);
        let first = pv.points().next().unwrap();
        let d = proj.to_meters(first);
        assert!((d.x - 70.0).abs() < 0.5, "oldest retained point should be x=70, got {}", d.x);
    }

    #[test]
    fn displacement_direction() {
        let (_, proj) = setup();
        let mut pv = PathVector::new(8);
        pv.push(at(&proj, 1000.0, 1000.0));
        pv.push(at(&proj, 1050.0, 1000.0));
        pv.push(at(&proj, 1100.0, 1000.0));
        let d = pv.displacement(&proj).unwrap();
        assert!((d.x - 100.0).abs() < 0.5 && d.y.abs() < 0.5);
    }

    #[test]
    fn heading_out_near_edge_moving_outward() {
        let (region, proj) = setup();
        let mut pv = PathVector::new(8);
        pv.push(at(&proj, 1800.0, 1000.0));
        pv.push(at(&proj, 1900.0, 1000.0));
        pv.push(at(&proj, 1970.0, 1000.0));
        assert!(pv.heading_out_of(&region, &proj, 100.0));
    }

    #[test]
    fn not_heading_out_when_deep_inside() {
        let (region, proj) = setup();
        let mut pv = PathVector::new(8);
        pv.push(at(&proj, 900.0, 1000.0));
        pv.push(at(&proj, 1000.0, 1000.0));
        assert!(!pv.heading_out_of(&region, &proj, 100.0));
    }

    #[test]
    fn not_heading_out_when_moving_inward_near_edge() {
        let (region, proj) = setup();
        let mut pv = PathVector::new(8);
        pv.push(at(&proj, 1990.0, 1000.0));
        pv.push(at(&proj, 1950.0, 1000.0));
        assert!(!pv.heading_out_of(&region, &proj, 100.0));
    }

    #[test]
    fn parked_car_near_edge_not_heading_out() {
        let (region, proj) = setup();
        let mut pv = PathVector::new(8);
        let p = at(&proj, 1980.0, 1000.0);
        pv.push(p);
        pv.push(p);
        pv.push(p);
        assert!(!pv.heading_out_of(&region, &proj, 100.0));
    }

    #[test]
    fn empty_path_has_no_direction() {
        let (region, proj) = setup();
        let pv = PathVector::new(4);
        assert!(pv.is_empty());
        assert!(pv.last().is_none());
        assert!(pv.displacement(&proj).is_none());
        assert!(!pv.heading_out_of(&region, &proj, 100.0));
    }
}
