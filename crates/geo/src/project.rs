//! Local planar projection.
//!
//! All spatial reasoning in the pipeline (nearest-8 queries, grid cover,
//! visibility radii) happens over a few kilometres, where an equirectangular
//! projection centred on the measurement region is accurate to well under a
//! metre. Projecting once and working in planar metres is both faster and
//! simpler than repeated spherical trigonometry.

use crate::latlng::{LatLng, EARTH_RADIUS_M};
use serde::{Deserialize, Serialize};

/// A point in the local planar frame, in metres east/north of the
/// projection origin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Meters {
    /// Metres east of the origin.
    pub x: f64,
    /// Metres north of the origin.
    pub y: f64,
}

/// A 2-D vector in metres; alias of [`Meters`] used where the value is a
/// displacement rather than a position.
pub type Vec2 = Meters;

impl Meters {
    /// Constructs a planar point.
    pub fn new(x: f64, y: f64) -> Self {
        Meters { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn dist(self, other: Meters) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance — use for comparisons to avoid the sqrt.
    pub fn dist2(self, other: Meters) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length in metres.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Component-wise subtraction (`self - other`).
    pub fn sub(self, other: Meters) -> Meters {
        Meters::new(self.x - other.x, self.y - other.y)
    }

    /// Component-wise addition.
    pub fn add(self, other: Meters) -> Meters {
        Meters::new(self.x + other.x, self.y + other.y)
    }

    /// Scalar multiplication.
    pub fn scale(self, k: f64) -> Meters {
        Meters::new(self.x * k, self.y * k)
    }

    /// Dot product.
    pub fn dot(self, other: Meters) -> f64 {
        self.x * other.x + self.y * other.y
    }
}

/// Equirectangular projection centred on a reference coordinate.
///
/// `to_meters`/`to_latlng` are exact inverses of each other; the planar
/// metric agrees with the spherical one to <0.01% within ~20 km of the
/// origin (verified by property tests in the crate root).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: LatLng,
    cos_lat: f64,
}

impl LocalProjection {
    /// Creates a projection centred on `origin`.
    pub fn new(origin: LatLng) -> Self {
        LocalProjection { origin, cos_lat: origin.lat.to_radians().cos() }
    }

    /// The projection's origin (maps to `(0, 0)`).
    pub fn origin(&self) -> LatLng {
        self.origin
    }

    /// Projects a geographic coordinate into the local planar frame.
    pub fn to_meters(&self, p: LatLng) -> Meters {
        let x = (p.lng - self.origin.lng).to_radians() * self.cos_lat * EARTH_RADIUS_M;
        let y = (p.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M;
        Meters { x, y }
    }

    /// Inverse projection back to geographic coordinates.
    pub fn to_latlng(&self, m: Meters) -> LatLng {
        let lat = self.origin.lat + (m.y / EARTH_RADIUS_M).to_degrees();
        let lng = self.origin.lng + (m.x / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        LatLng::new(lat, lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_zero() {
        let o = LatLng::new(40.75, -73.98);
        let proj = LocalProjection::new(o);
        let m = proj.to_meters(o);
        assert_eq!(m, Meters::new(0.0, 0.0));
        assert_eq!(proj.to_latlng(m), o);
    }

    #[test]
    fn axes_are_east_and_north() {
        let o = LatLng::new(40.75, -73.98);
        let proj = LocalProjection::new(o);
        let east = proj.to_meters(o.translate(90.0, 250.0));
        assert!((east.x - 250.0).abs() < 0.5 && east.y.abs() < 0.5, "{east:?}");
        let north = proj.to_meters(o.translate(0.0, 250.0));
        assert!((north.y - 250.0).abs() < 0.5 && north.x.abs() < 0.5, "{north:?}");
    }

    #[test]
    fn vector_algebra() {
        let a = Meters::new(3.0, 4.0);
        let b = Meters::new(-1.0, 2.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.sub(b), Meters::new(4.0, 2.0));
        assert_eq!(a.add(b), Meters::new(2.0, 6.0));
        assert_eq!(a.scale(2.0), Meters::new(6.0, 8.0));
        assert_eq!(a.dot(b), 5.0);
        assert_eq!(a.dist(b), (16.0f64 + 4.0).sqrt());
        assert_eq!(a.dist2(b), 20.0);
    }
}
