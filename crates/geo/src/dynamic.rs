//! Incrementally-maintained bucket grid for point sets that churn.
//!
//! [`SpatialGrid`](crate::SpatialGrid) is built once and queried; the
//! marketplace's idle-driver index, however, changes a handful of entries
//! per tick (a dispatch removes a car, a trip completion re-inserts it, an
//! idle cruise moves it one cell over) while the vast majority of points
//! stay put. Rebuilding the CSR grid from scratch twice per tick made the
//! index the single largest line in the tick profile. [`DynamicGrid`]
//! keeps the same uniform square-cell geometry but stores each cell as a
//! small `Vec<(id, position)>` so membership updates are O(1) per change.
//!
//! Queries are **exact** and id-deterministic: ring expansion stops only
//! once no unvisited cell can hold a better point, and ties resolve toward
//! the *lowest id*. A freshly rebuilt [`SpatialGrid`](crate::SpatialGrid)
//! over the same points, inserted in ascending id order, breaks ties by
//! insertion index — i.e. by id — so swapping one index for the other
//! changes no query answer, bit for bit, regardless of how differently the
//! two grids bucket the plane.

use crate::project::Meters;

/// A mutable point set bucketed into uniform square cells. Ids are caller
/// -assigned `u32`s (e.g. driver indices) and must be unique among the
/// points currently stored.
#[derive(Debug, Clone)]
pub struct DynamicGrid {
    cell_size: f64,
    origin: Meters,
    nx: usize,
    ny: usize,
    /// Unordered per-cell membership; order never affects query results
    /// because ties resolve by id, not storage position.
    cells: Vec<Vec<(u32, Meters)>>,
    len: usize,
}

impl DynamicGrid {
    /// Creates an empty grid covering the axis-aligned box `min..=max`,
    /// sized so roughly `expected_points` points land one per cell
    /// (clamped to the same 50–1500 m range as
    /// [`auto_cell_size`](crate::auto_cell_size)). Points outside the box
    /// are clamped into the border cells, so coverage is a hint, not a
    /// contract.
    pub fn new(min: Meters, max: Meters, expected_points: usize) -> Self {
        let w = (max.x - min.x).max(1.0);
        let h = (max.y - min.y).max(1.0);
        let mut cell_size =
            (w * h / expected_points.max(1) as f64).sqrt().clamp(50.0, 1_500.0);
        let max_cells = (4 * expected_points).max(1_024);
        let (nx, ny) = loop {
            let nx = (w / cell_size) as usize + 1;
            let ny = (h / cell_size) as usize + 1;
            if nx.saturating_mul(ny) <= max_cells {
                break (nx, ny);
            }
            cell_size *= 2.0;
        };
        DynamicGrid {
            cell_size,
            origin: min,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            len: 0,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_index(&self, pos: Meters) -> usize {
        let (cx, cy) = self.center_cell(pos);
        cy * self.nx + cx
    }

    fn center_cell(&self, pos: Meters) -> (usize, usize) {
        let fx = (pos.x - self.origin.x) / self.cell_size;
        let fy = (pos.y - self.origin.y) / self.cell_size;
        let cx = if fx <= 0.0 { 0 } else { (fx as usize).min(self.nx - 1) };
        let cy = if fy <= 0.0 { 0 } else { (fy as usize).min(self.ny - 1) };
        (cx, cy)
    }

    /// Adds a point. The id must not already be present.
    pub fn insert(&mut self, id: u32, pos: Meters) {
        let c = self.cell_index(pos);
        self.cells[c].push((id, pos));
        self.len += 1;
    }

    /// Removes a point by id; `pos` must be the position it was stored
    /// under (insert or latest move). Panics if the point is absent — a
    /// missing entry means the caller's incremental bookkeeping diverged,
    /// which must fail loudly rather than degrade query answers.
    pub fn remove(&mut self, id: u32, pos: Meters) {
        let c = self.cell_index(pos);
        let cell = &mut self.cells[c];
        let at = cell
            .iter()
            .position(|&(i, _)| i == id)
            .unwrap_or_else(|| panic!("DynamicGrid::remove: id {id} not in its cell"));
        cell.swap_remove(at);
        self.len -= 1;
    }

    /// Moves a point from its stored position `old` to `new`. Stays O(1)
    /// when both land in the same cell.
    pub fn update(&mut self, id: u32, old: Meters, new: Meters) {
        let co = self.cell_index(old);
        let cn = self.cell_index(new);
        if co == cn {
            let cell = &mut self.cells[co];
            let at = cell
                .iter()
                .position(|&(i, _)| i == id)
                .unwrap_or_else(|| panic!("DynamicGrid::update: id {id} not in its cell"));
            cell[at].1 = new;
        } else {
            self.remove(id, old);
            self.insert(id, new);
        }
    }

    /// Calls `f` with every point on Chebyshev cell-ring `r` around
    /// `(cx, cy)`. Mirrors `SpatialGrid::for_ring_cells`.
    fn for_ring_points(&self, cx: usize, cy: usize, r: usize, mut f: impl FnMut(u32, Meters)) {
        let mut cell = |ix: usize, iy: usize| {
            for &(id, p) in &self.cells[iy * self.nx + ix] {
                f(id, p);
            }
        };
        if r == 0 {
            cell(cx, cy);
            return;
        }
        let (cx, cy, r) = (cx as i64, cy as i64, r as i64);
        let x_lo = (cx - r).max(0);
        let x_hi = (cx + r).min(self.nx as i64 - 1);
        for iy in [cy - r, cy + r] {
            if (0..self.ny as i64).contains(&iy) {
                for ix in x_lo..=x_hi {
                    cell(ix as usize, iy as usize);
                }
            }
        }
        let y_lo = (cy - r + 1).max(0);
        let y_hi = (cy + r - 1).min(self.ny as i64 - 1);
        for ix in [cx - r, cx + r] {
            if (0..self.nx as i64).contains(&ix) {
                for iy in y_lo..=y_hi {
                    cell(ix as usize, iy as usize);
                }
            }
        }
    }

    /// After visiting rings `0..=r`: smallest possible distance from `pos`
    /// to any unvisited in-grid cell (valid for L1 and L2 — leaving an
    /// axis-aligned box means crossing one side), `None` once every cell
    /// has been visited. Mirrors `SpatialGrid::next_ring_bound`.
    fn next_ring_bound(&self, pos: Meters, cx: usize, cy: usize, r: usize) -> Option<f64> {
        let (cx, cy, r) = (cx as i64, cy as i64, r as i64);
        let mut bound = f64::INFINITY;
        let mut any = false;
        if cx - r > 0 {
            any = true;
            bound = bound.min(pos.x - (self.origin.x + (cx - r) as f64 * self.cell_size));
        }
        if cx + r + 1 < self.nx as i64 {
            any = true;
            bound = bound.min(self.origin.x + (cx + r + 1) as f64 * self.cell_size - pos.x);
        }
        if cy - r > 0 {
            any = true;
            bound = bound.min(pos.y - (self.origin.y + (cy - r) as f64 * self.cell_size));
        }
        if cy + r + 1 < self.ny as i64 {
            any = true;
            bound = bound.min(self.origin.y + (cy + r + 1) as f64 * self.cell_size - pos.y);
        }
        any.then(|| bound.max(0.0))
    }

    /// The stored point minimizing `(L1 distance to pos, id)` among those
    /// within `max_dist` (inclusive), as `(id, L1 distance)`. The
    /// lexicographic tie-break reproduces a first-strictly-less linear
    /// scan in ascending id order — the same contract as
    /// `SpatialGrid::nearest_l1_within` over points inserted in id order.
    pub fn nearest_l1_within(&self, pos: Meters, max_dist: f64) -> Option<(u32, f64)> {
        if self.is_empty() {
            return None;
        }
        let (cx, cy) = self.center_cell(pos);
        let mut best: Option<(f64, u32)> = None;
        let mut r = 0;
        loop {
            self.for_ring_points(cx, cy, r, |id, p| {
                let dist = (p.x - pos.x).abs() + (p.y - pos.y).abs();
                if dist <= max_dist
                    && best.is_none_or(|(bd, bi)| dist < bd || (dist == bd && id < bi))
                {
                    best = Some((dist, id));
                }
            });
            let Some(lb) = self.next_ring_bound(pos, cx, cy, r) else { break };
            // Stop once no unvisited cell can beat (or tie) the best, or
            // can lie within the radius at all.
            if lb > max_dist || best.is_some_and(|(bd, _)| lb > bd) {
                break;
            }
            r += 1;
        }
        best.map(|(d, i)| (i, d))
    }

    /// Unbounded variant of [`DynamicGrid::nearest_l1_within`].
    pub fn nearest_l1(&self, pos: Meters) -> Option<(u32, f64)> {
        self.nearest_l1_within(pos, f64::INFINITY)
    }

    /// All stored `(id, position)` pairs, in unspecified order (equivalence
    /// checks sort by id).
    pub fn items(&self) -> impl Iterator<Item = (u32, Meters)> + '_ {
        self.cells.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_l1(points: &[(u32, Meters)], pos: Meters, max_dist: f64) -> Option<(u32, f64)> {
        let mut sorted: Vec<_> = points.to_vec();
        sorted.sort_by_key(|&(id, _)| id);
        let mut best: Option<(u32, f64)> = None;
        for (id, p) in sorted {
            let dist = (p.x - pos.x).abs() + (p.y - pos.y).abs();
            if dist <= max_dist && best.is_none_or(|(_, bd)| dist < bd) {
                best = Some((id, dist));
            }
        }
        best
    }

    #[test]
    fn empty_grid_answers_none() {
        let g = DynamicGrid::new(Meters::new(0.0, 0.0), Meters::new(1000.0, 1000.0), 10);
        assert!(g.is_empty());
        assert!(g.nearest_l1(Meters::new(3.0, 4.0)).is_none());
    }

    #[test]
    fn insert_remove_update_roundtrip() {
        let mut g = DynamicGrid::new(Meters::new(0.0, 0.0), Meters::new(2000.0, 2000.0), 16);
        g.insert(7, Meters::new(100.0, 100.0));
        g.insert(3, Meters::new(1900.0, 1900.0));
        assert_eq!(g.len(), 2);
        assert_eq!(g.nearest_l1(Meters::new(0.0, 0.0)), Some((7, 200.0)));
        // Move id 7 far away; id 3 becomes nearest.
        g.update(7, Meters::new(100.0, 100.0), Meters::new(2000.0, 2000.0));
        assert_eq!(g.nearest_l1(Meters::new(0.0, 0.0)).map(|(i, _)| i), Some(3));
        g.remove(3, Meters::new(1900.0, 1900.0));
        assert_eq!(g.len(), 1);
        assert_eq!(g.nearest_l1(Meters::new(0.0, 0.0)).map(|(i, _)| i), Some(7));
    }

    #[test]
    fn ties_resolve_to_lowest_id() {
        let mut g = DynamicGrid::new(Meters::new(0.0, 0.0), Meters::new(500.0, 500.0), 8);
        // Insert in descending id order; tie-break must still pick id 1.
        g.insert(9, Meters::new(100.0, 0.0));
        g.insert(4, Meters::new(100.0, 0.0));
        g.insert(1, Meters::new(0.0, 100.0));
        assert_eq!(g.nearest_l1(Meters::new(0.0, 0.0)), Some((1, 100.0)));
        g.remove(1, Meters::new(0.0, 100.0));
        assert_eq!(g.nearest_l1(Meters::new(0.0, 0.0)), Some((4, 100.0)));
    }

    #[test]
    fn radius_is_inclusive() {
        let mut g = DynamicGrid::new(Meters::new(0.0, 0.0), Meters::new(800.0, 800.0), 4);
        g.insert(0, Meters::new(300.0, 400.0));
        assert_eq!(g.nearest_l1_within(Meters::new(0.0, 0.0), 700.0), Some((0, 700.0)));
        assert_eq!(g.nearest_l1_within(Meters::new(0.0, 0.0), 699.0), None);
    }

    #[test]
    fn points_outside_box_are_still_found() {
        let mut g = DynamicGrid::new(Meters::new(0.0, 0.0), Meters::new(1000.0, 1000.0), 10);
        g.insert(2, Meters::new(-500.0, 2500.0));
        g.insert(8, Meters::new(400.0, 400.0));
        assert_eq!(
            g.nearest_l1(Meters::new(-400.0, 2400.0)),
            Some((2, 200.0)),
            "clamped border cells must keep out-of-box points queryable"
        );
        // And removing via the same clamped cell works.
        g.remove(2, Meters::new(-500.0, 2500.0));
        assert_eq!(g.nearest_l1(Meters::new(-400.0, 2400.0)).map(|(i, _)| i), Some(8));
    }

    #[test]
    fn matches_brute_force_through_churn() {
        // Deterministic pseudo-random walk: insert/remove/move a point set
        // and compare every query against a linear scan.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut g = DynamicGrid::new(Meters::new(0.0, 0.0), Meters::new(3000.0, 3000.0), 64);
        let mut live: Vec<(u32, Meters)> = Vec::new();
        for step in 0..2000u32 {
            let roll = next() % 100;
            if roll < 40 || live.is_empty() {
                // Snapped coordinates create exact ties and boundary hits.
                let p = Meters::new(
                    ((next() % 3100) as f64 / 100.0).round() * 100.0,
                    ((next() % 3100) as f64 / 100.0).round() * 100.0,
                );
                g.insert(step, p);
                live.push((step, p));
            } else if roll < 65 {
                let at = (next() as usize) % live.len();
                let (id, p) = live.swap_remove(at);
                g.remove(id, p);
            } else {
                let at = (next() as usize) % live.len();
                let (id, old) = live[at];
                let new = Meters::new(
                    ((next() % 3100) as f64 / 100.0).round() * 100.0,
                    ((next() % 3100) as f64 / 100.0).round() * 100.0,
                );
                g.update(id, old, new);
                live[at].1 = new;
            }
            let q = Meters::new((next() % 4000) as f64 - 500.0, (next() % 4000) as f64 - 500.0);
            let max_dist = (next() % 5000) as f64;
            assert_eq!(
                g.nearest_l1_within(q, max_dist),
                brute_l1(&live, q, max_dist),
                "step {step}"
            );
            assert_eq!(g.len(), live.len(), "step {step}");
        }
    }
}
