//! Planar polygons: measurement regions and surge areas.
//!
//! The paper works with two kinds of polygon: the *measurement polygon*
//! (the region blanketed by the 43 clients, used for the edge filter on
//! car deaths) and the *surge areas* (the manually drawn partitions Uber
//! prices independently, Figs. 18–19). Both only need containment,
//! boundary-distance and bounding-box queries.

use crate::project::Meters;
use serde::{Deserialize, Serialize};

/// Axis-aligned bounding box in the local planar frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner (south-west).
    pub min: Meters,
    /// Maximum corner (north-east).
    pub max: Meters,
}

impl BoundingBox {
    /// Builds the bounding box of a point set. Panics on an empty slice.
    pub fn of(points: &[Meters]) -> Self {
        assert!(!points.is_empty(), "bounding box of empty point set");
        let mut min = points[0];
        let mut max = points[0];
        for p in points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        BoundingBox { min, max }
    }

    /// Whether `p` lies inside (or on the edge of) the box.
    pub fn contains(&self, p: Meters) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width (east-west extent) in metres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north-south extent) in metres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Centre point.
    pub fn center(&self) -> Meters {
        Meters::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }
}

/// A simple (non-self-intersecting) polygon in the local planar frame.
///
/// ```
/// use surgescope_geo::{Meters, Polygon};
/// let region = Polygon::rect(Meters::new(0.0, 0.0), Meters::new(2200.0, 900.0));
/// assert!(region.contains(Meters::new(1100.0, 450.0)));
/// // The edge filter asks how close a disappearance was to the boundary:
/// assert_eq!(region.distance_to_boundary(Meters::new(1100.0, 100.0)), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Meters>,
    bbox: BoundingBox,
}

impl Polygon {
    /// Creates a polygon from its vertices (implicitly closed). Panics if
    /// fewer than 3 vertices are given — a degenerate region is always a
    /// configuration error here.
    pub fn new(vertices: Vec<Meters>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least 3 vertices");
        let bbox = BoundingBox::of(&vertices);
        Polygon { vertices, bbox }
    }

    /// An axis-aligned rectangle, the common case for measurement regions.
    pub fn rect(min: Meters, max: Meters) -> Self {
        assert!(max.x > min.x && max.y > min.y, "degenerate rectangle");
        Polygon::new(vec![
            min,
            Meters::new(max.x, min.y),
            max,
            Meters::new(min.x, max.y),
        ])
    }

    /// The polygon's vertices in order.
    pub fn vertices(&self) -> &[Meters] {
        &self.vertices
    }

    /// Cached bounding box.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Even-odd-rule point-in-polygon test. Points exactly on an edge may
    /// report either side; the callers tolerate that (the edge filter adds
    /// an explicit margin anyway).
    pub fn contains(&self, p: Meters) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Distance from `p` to the nearest point on the polygon boundary
    /// (regardless of whether `p` is inside). This drives the paper's edge
    /// filter: a car that disappears within `margin` of the boundary may
    /// have simply driven out, so it is not counted as a death.
    pub fn distance_to_boundary(&self, p: Meters) -> f64 {
        let n = self.vertices.len();
        let mut best = f64::INFINITY;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            best = best.min(dist_point_segment(p, a, b));
        }
        best
    }

    /// Signed area (positive for counter-clockwise winding), in m².
    pub fn area_m2(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }

    /// Centroid of the polygon (area-weighted).
    pub fn centroid(&self) -> Meters {
        let n = self.vertices.len();
        let a = self.area_m2();
        if a.abs() < 1e-9 {
            return self.bbox.center();
        }
        let (mut cx, mut cy) = (0.0, 0.0);
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
        }
        Meters::new(cx / (6.0 * a), cy / (6.0 * a))
    }
}

fn dist_point_segment(p: Meters, a: Meters, b: Meters) -> f64 {
    let ab = b.sub(a);
    let len2 = ab.dot(ab);
    if len2 == 0.0 {
        return p.dist(a);
    }
    let t = (p.sub(a).dot(ab) / len2).clamp(0.0, 1.0);
    p.dist(a.add(ab.scale(t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rect(Meters::new(0.0, 0.0), Meters::new(100.0, 100.0))
    }

    #[test]
    fn contains_interior_and_excludes_exterior() {
        let sq = unit_square();
        assert!(sq.contains(Meters::new(50.0, 50.0)));
        assert!(sq.contains(Meters::new(1.0, 99.0)));
        assert!(!sq.contains(Meters::new(-1.0, 50.0)));
        assert!(!sq.contains(Meters::new(50.0, 101.0)));
    }

    #[test]
    fn boundary_distance_interior() {
        let sq = unit_square();
        assert!((sq.distance_to_boundary(Meters::new(50.0, 50.0)) - 50.0).abs() < 1e-9);
        assert!((sq.distance_to_boundary(Meters::new(10.0, 50.0)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_distance_exterior() {
        let sq = unit_square();
        assert!((sq.distance_to_boundary(Meters::new(-30.0, 50.0)) - 30.0).abs() < 1e-9);
        // Corner: diagonal distance.
        let d = sq.distance_to_boundary(Meters::new(-30.0, -40.0));
        assert!((d - 50.0).abs() < 1e-9);
    }

    #[test]
    fn area_and_centroid() {
        let sq = unit_square();
        assert!((sq.area_m2().abs() - 10_000.0).abs() < 1e-6);
        let c = sq.centroid();
        assert!((c.x - 50.0).abs() < 1e-9 && (c.y - 50.0).abs() < 1e-9);
    }

    #[test]
    fn concave_polygon_containment() {
        // L-shape: the notch must be outside.
        let l = Polygon::new(vec![
            Meters::new(0.0, 0.0),
            Meters::new(100.0, 0.0),
            Meters::new(100.0, 40.0),
            Meters::new(40.0, 40.0),
            Meters::new(40.0, 100.0),
            Meters::new(0.0, 100.0),
        ]);
        assert!(l.contains(Meters::new(20.0, 80.0)));
        assert!(l.contains(Meters::new(80.0, 20.0)));
        assert!(!l.contains(Meters::new(80.0, 80.0)), "notch should be outside");
    }

    #[test]
    fn bbox_queries() {
        let sq = unit_square();
        let bb = sq.bbox();
        assert_eq!(bb.width(), 100.0);
        assert_eq!(bb.height(), 100.0);
        assert_eq!(bb.center(), Meters::new(50.0, 50.0));
        assert!(bb.contains(Meters::new(0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn rejects_degenerate() {
        let _ = Polygon::new(vec![Meters::new(0.0, 0.0), Meters::new(1.0, 1.0)]);
    }
}
