//! Observability primitives for the measurement pipeline.
//!
//! The paper's methodology is measurement under opacity: the toolkit
//! audits a marketplace it cannot see inside. This crate gives the
//! pipeline the inverse — a way to audit *itself* from the inside —
//! without adding a dependency or a hot-path allocation:
//!
//! * [`Counter`], [`Gauge`], [`Histogram`] — lock-free atomic
//!   instruments. Every mutation is a relaxed atomic op on a
//!   pre-allocated cell, so instrumented hot loops stay allocation-free
//!   (the `alloc_free` gate in `crates/bench` runs with metrics on).
//! * [`Timer`] + [`Span`] — `span!`-style scoped wall-clock timers
//!   (two `Instant::now` calls and two atomic adds per span).
//! * [`MetricsRegistry`] — a named collection of the above. Components
//!   create their instruments up front (no `Option` branches in hot
//!   code) and a registry *adopts* the handles under stable names;
//!   [`MetricsRegistry::snapshot`] renders them into a deterministic
//!   JSON document.
//!
//! # Determinism contract
//!
//! A snapshot has two sections. The **deterministic** section holds
//! counters, gauges and histogram buckets: pure functions of the
//! simulated work. Because every instrument is a commutative monoid
//! (addition, max, bucket counts), concurrent increments from worker
//! threads total to the same value regardless of interleaving — so the
//! section is byte-identical at any `--jobs` / parallelism setting,
//! clean or faulted (regression-tested in `crates/experiments`). The
//! **timing** section holds wall-clock spans and is explicitly excluded
//! from that contract. Keys are emitted sorted; values are integers
//! (never floats), so rendering is platform-independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water instrument.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: one atomic cell per `≤ bound` bucket plus
/// an overflow bucket. Bounds are supplied once, at construction, so
/// recording is a linear scan over a handful of bounds and one atomic
/// add — no allocation, ever.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Arc<[AtomicU64]>,
}

impl Histogram {
    /// A histogram over `bounds` (ascending upper bounds; an implicit
    /// `+inf` bucket is appended).
    pub fn new(bounds: &'static [u64]) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts: Vec<AtomicU64> =
            (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds, counts: counts.into() }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket upper bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Bucket counts, overflow last.
    pub fn counts(&self) -> Vec<u64> {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) approximated from the bucket
    /// boundaries: the upper bound of the first bucket whose cumulative
    /// count covers `q` of the total. Observations in the overflow bucket
    /// report the last finite bound (the histogram cannot resolve beyond
    /// it). Returns `None` on an empty histogram or a non-finite `q`.
    pub fn approx_percentile(&self, q: f64) -> Option<u64> {
        if !q.is_finite() {
            return None;
        }
        let counts = self.counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q = 0 means the first.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match self.bounds.get(i) {
                    Some(&b) => b,
                    None => *self.bounds.last().expect("histogram has at least one bound"),
                });
            }
        }
        unreachable!("cumulative count covers the total")
    }
}

/// Accumulated wall-clock time: nanosecond sum plus call count.
/// Timer values land in the snapshot's **timing** section — wall time is
/// never part of the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct Timer {
    ns: Arc<AtomicU64>,
    calls: Arc<AtomicU64>,
}

impl Timer {
    /// A fresh timer at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a scoped span; elapsed time is recorded when the returned
    /// [`Span`] drops. The span owns a cloned handle (two `Arc` refcount
    /// bumps, no allocation), so it never borrows the timer — hot loops
    /// can mutate `self` freely while a span is live.
    #[inline]
    pub fn start(&self) -> Span {
        Span { timer: self.clone(), begin: Instant::now() }
    }

    /// Records an externally measured duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
        self.calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Total nanoseconds recorded.
    pub fn total_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Number of spans recorded.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

/// A live scoped measurement; records into its [`Timer`] on drop.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct Span {
    timer: Timer,
    begin: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.timer.record_ns(self.begin.elapsed().as_nanos() as u64);
    }
}

/// Scoped timing sugar: `span!(timer)` measures from here to the end of
/// the enclosing scope. Macro hygiene makes repeated use in one scope
/// safe.
#[macro_export]
macro_rules! span {
    ($timer:expr) => {
        let _span = $timer.start();
    };
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// A histogram whose observations are wall-clock measurements
    /// (latencies): buckets render into the timing section, outside the
    /// determinism contract.
    TimingHistogram(Histogram),
    Timer(Timer),
}

/// A named collection of instruments with a deterministic snapshot.
///
/// Registration (name → handle) takes a lock and allocates; it happens
/// once, at component construction. The handles themselves are
/// `Arc`-shared atomics — mutating them never touches the registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn insert(&self, name: &str, i: Instrument) {
        let prev = self
            .inner
            .lock()
            .expect("metrics registry lock")
            .insert(name.to_string(), i);
        debug_assert!(prev.is_none(), "metric {name} registered twice");
    }

    /// Creates and registers a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let c = Counter::new();
        self.adopt_counter(name, &c);
        c
    }

    /// Creates and registers a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let g = Gauge::new();
        self.adopt_gauge(name, &g);
        g
    }

    /// Creates and registers a histogram over `bounds`.
    pub fn histogram(&self, name: &str, bounds: &'static [u64]) -> Histogram {
        let h = Histogram::new(bounds);
        self.adopt_histogram(name, &h);
        h
    }

    /// Creates and registers a histogram whose *observations* are wall
    /// clock (latencies). Same cells and recording path as
    /// [`MetricsRegistry::histogram`], but the buckets render into the
    /// snapshot's **timing** section: latency distributions are not a
    /// pure function of the simulated work and must not enter the
    /// determinism contract.
    pub fn timing_histogram(&self, name: &str, bounds: &'static [u64]) -> Histogram {
        let h = Histogram::new(bounds);
        self.adopt_timing_histogram(name, &h);
        h
    }

    /// Creates and registers a timer (timing section).
    pub fn timer(&self, name: &str) -> Timer {
        let t = Timer::new();
        self.adopt_timer(name, &t);
        t
    }

    /// Registers an existing counter under `name` (shares the cell).
    pub fn adopt_counter(&self, name: &str, c: &Counter) {
        self.insert(name, Instrument::Counter(c.clone()));
    }

    /// Registers an existing gauge under `name`.
    pub fn adopt_gauge(&self, name: &str, g: &Gauge) {
        self.insert(name, Instrument::Gauge(g.clone()));
    }

    /// Registers an existing histogram under `name`.
    pub fn adopt_histogram(&self, name: &str, h: &Histogram) {
        self.insert(name, Instrument::Histogram(h.clone()));
    }

    /// Registers an existing histogram under `name` in the **timing**
    /// section (see [`MetricsRegistry::timing_histogram`]).
    pub fn adopt_timing_histogram(&self, name: &str, h: &Histogram) {
        self.insert(name, Instrument::TimingHistogram(h.clone()));
    }

    /// Registers an existing timer under `name`.
    pub fn adopt_timer(&self, name: &str, t: &Timer) {
        self.insert(name, Instrument::Timer(t.clone()));
    }

    /// Reads every instrument into a [`Snapshot`]. Counters, gauges and
    /// histogram buckets land in the deterministic section; timers land
    /// in the timing section as `<name>.ns` / `<name>.calls` pairs.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry lock");
        let mut deterministic = Vec::new();
        let mut timing = Vec::new();
        for (name, inst) in inner.iter() {
            match inst {
                Instrument::Counter(c) => deterministic.push((name.clone(), c.get())),
                Instrument::Gauge(g) => deterministic.push((name.clone(), g.get())),
                Instrument::Histogram(h) => {
                    let counts = h.counts();
                    for (i, &b) in h.bounds().iter().enumerate() {
                        deterministic.push((format!("{name}.le_{b}"), counts[i]));
                    }
                    deterministic
                        .push((format!("{name}.inf"), counts[h.bounds().len()]));
                }
                Instrument::TimingHistogram(h) => {
                    let counts = h.counts();
                    for (i, &b) in h.bounds().iter().enumerate() {
                        timing.push((format!("{name}.le_{b}"), counts[i]));
                    }
                    timing.push((format!("{name}.inf"), counts[h.bounds().len()]));
                }
                Instrument::Timer(t) => {
                    timing.push((format!("{name}.ns"), t.total_ns()));
                    timing.push((format!("{name}.calls"), t.calls()));
                }
            }
        }
        // BTreeMap iteration is sorted by instrument name, but histogram
        // and timer expansion suffixes can interleave across names.
        deterministic.sort();
        timing.sort();
        Snapshot { deterministic, timing }
    }
}

/// A point-in-time reading of a registry, ready to render as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Sorted `(key, value)` pairs covered by the determinism contract.
    pub deterministic: Vec<(String, u64)>,
    /// Sorted `(key, value)` wall-clock pairs — excluded from the
    /// contract.
    pub timing: Vec<(String, u64)>,
}

fn json_object(pairs: &[(String, u64)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Keys are metric names: ASCII identifiers and dots, no escapes
        // needed (enforced loosely here; a quote would corrupt output).
        debug_assert!(!k.contains(['"', '\\']), "unescapable metric name {k}");
        out.push('"');
        out.push_str(k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push('}');
}

impl Snapshot {
    /// Renders the full snapshot:
    /// `{"deterministic":{...},"timing":{...}}`, keys sorted.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(
            32 * (self.deterministic.len() + self.timing.len()) + 64,
        );
        s.push_str("{\"deterministic\":");
        json_object(&self.deterministic, &mut s);
        s.push_str(",\"timing\":");
        json_object(&self.timing, &mut s);
        s.push('}');
        s
    }

    /// Renders only the determinism-checked section — the bytes the
    /// `--jobs` identity contract compares.
    pub fn deterministic_json(&self) -> String {
        let mut s = String::with_capacity(32 * self.deterministic.len() + 8);
        json_object(&self.deterministic, &mut s);
        s
    }

    /// Looks up one deterministic value by key.
    pub fn value(&self, key: &str) -> Option<u64> {
        self.deterministic
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c.events");
        let g = reg.gauge("g.depth");
        let h = reg.histogram("h.delay", &[1, 4, 16]);
        c.add(3);
        c.incr();
        g.set_max(7);
        g.set_max(2); // lower: ignored
        for v in [0, 1, 2, 5, 100] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.value("c.events"), Some(4));
        assert_eq!(snap.value("g.depth"), Some(7));
        assert_eq!(snap.value("h.delay.le_1"), Some(2));
        assert_eq!(snap.value("h.delay.le_4"), Some(1));
        assert_eq!(snap.value("h.delay.le_16"), Some(1));
        assert_eq!(snap.value("h.delay.inf"), Some(1));
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn timers_render_in_timing_section_only() {
        let reg = MetricsRegistry::new();
        let t = reg.timer("phase.move");
        {
            span!(t);
            span!(t); // hygiene: two spans in one scope
        }
        let snap = reg.snapshot();
        assert!(snap.deterministic.is_empty(), "wall time leaked into the contract");
        assert_eq!(snap.timing.len(), 2);
        let calls = snap
            .timing
            .iter()
            .find(|(k, _)| k == "phase.move.calls")
            .map(|(_, v)| *v);
        assert_eq!(calls, Some(2));
        assert!(snap.deterministic_json().starts_with('{'));
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").incr();
        reg.counter("a.first").add(2);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            "{\"deterministic\":{\"a.first\":2,\"b.second\":1},\"timing\":{}}"
        );
        // Registration order does not matter: same instruments, other
        // order, same bytes.
        let reg2 = MetricsRegistry::new();
        reg2.counter("a.first").add(2);
        reg2.counter("b.second").incr();
        assert_eq!(reg2.snapshot().to_json(), json);
    }

    #[test]
    fn histogram_approx_percentile_reads_bucket_bounds() {
        let h = Histogram::new(&[10, 100, 1_000]);
        assert_eq!(h.approx_percentile(0.5), None, "empty histogram has no percentile");
        for v in [5, 7, 50, 60, 70, 80, 500, 600, 700] {
            h.record(v);
        }
        assert_eq!(h.approx_percentile(0.0), Some(10));
        assert_eq!(h.approx_percentile(0.5), Some(100));
        assert_eq!(h.approx_percentile(0.99), Some(1_000));
        assert_eq!(h.approx_percentile(1.0), Some(1_000));
        // Overflow observations saturate at the last finite bound.
        h.record(1_000_000);
        assert_eq!(h.approx_percentile(1.0), Some(1_000));
        assert_eq!(h.approx_percentile(f64::NAN), None);
    }

    #[test]
    fn timing_histogram_renders_outside_the_contract() {
        let reg = MetricsRegistry::new();
        let h = reg.timing_histogram("lat.us", &[10, 100]);
        for v in [5, 50, 500] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert!(snap.deterministic.is_empty(), "latency leaked into the contract");
        let timing: Vec<&str> = snap.timing.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(timing, ["lat.us.inf", "lat.us.le_10", "lat.us.le_100"]);
        assert!(snap.timing.iter().all(|(_, v)| *v == 1));
        assert_eq!(h.approx_percentile(0.5), Some(100));
    }

    #[test]
    fn concurrent_increments_total_deterministically() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn adopted_handles_share_cells() {
        let reg = MetricsRegistry::new();
        let c = Counter::new();
        c.add(5);
        reg.adopt_counter("shared", &c);
        c.add(2);
        assert_eq!(reg.snapshot().value("shared"), Some(7));
    }
}
