//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches use —
//! `Criterion::default().sample_size(n)`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/`criterion_main!`
//! — on plain `std::time::Instant` timing. Each benchmark auto-calibrates
//! an iteration count, collects `sample_size` samples, and prints
//! `[min median max]` per-iteration times. No statistics beyond that, no
//! HTML reports, no saved baselines.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Per-sample time budget; small enough that a full `cargo bench` run
/// stays in the tens of seconds even with many benchmarks.
const SAMPLE_BUDGET_NS: u128 = 5_000_000; // 5 ms
const WARMUP_BUDGET_NS: u128 = 20_000_000; // 20 ms

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns/iter for each collected sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, auto-calibrating how many calls fit in one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the budget elapses to estimate per-iter cost
        // (and to fault in caches / branch predictors).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed().as_nanos() >= WARMUP_BUDGET_NS {
                break;
            }
        }
        let est_ns_per_iter =
            (warm_start.elapsed().as_nanos() / u128::from(warm_iters)).max(1);
        let iters_per_sample = (SAMPLE_BUDGET_NS / est_ns_per_iter).clamp(1, 1 << 24) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no measurement: Bencher::iter never called)");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{id:<40} time: [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a single group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __criterion: $crate::Criterion = $cfg;
            $($target(&mut __criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
    }
}
