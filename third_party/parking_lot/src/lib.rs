//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` that reproduce parking_lot's signature
//! difference from std: `lock()`/`read()`/`write()` return guards directly
//! instead of `Result`s. Poisoned locks are recovered transparently
//! (parking_lot has no poisoning at all, so this matches its semantics
//! from the caller's point of view).

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
