//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! supplies the subset of serde the workspace uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs, newtype structs and unit-variant
//! enums, plus `serde_json::to_string` / `from_str` round-trips.
//!
//! Instead of upstream serde's visitor architecture, everything funnels
//! through a self-describing [`Value`] tree: `Serialize` renders a value
//! into the tree, `Deserialize` reads it back out. `serde_json` (the
//! sibling stub) converts between [`Value`] and JSON text. This is a far
//! smaller contract than real serde, but it is fully deterministic
//! (field order preserved) and round-trips every type in the workspace.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stub's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field; `Null` when absent (so optional fields
    /// deserialize to their empty state).
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Value, Error> {
        const NULL: &Value = &Value::Null;
        let map = self
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected object with field `{key}`")))?;
        Ok(map.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(NULL))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value, failing on shape mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    concat!(stringify!($t), " out of range: {}"), n)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("integer out of i64 range: {n}"))
                    })?,
                    other => return Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    concat!(stringify!($t), " out of range: {}"), n)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(T::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        T::to_value(self)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(T::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(T::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(T::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec = Vec::<T>::from_value(v)?;
        let got = vec.len();
        vec.try_into()
            .map_err(|_| Error::custom(format!("expected {N}-element array, got {got}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom(format!("expected 2-element array, got {v:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom(format!("expected 3-element array, got {v:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
