//! Offline stand-in for `crossbeam`.
//!
//! Since Rust 1.63 the standard library ships scoped threads, which is the
//! only crossbeam facility this workspace's manifests request, so this stub
//! delegates to `std::thread::scope`. One signature divergence: the spawn
//! closure takes no argument (std style) instead of crossbeam's `&Scope`
//! parameter.

#![forbid(unsafe_code)]

/// Scoped-thread support, mirroring `crossbeam::thread`.
pub mod thread {
    use std::thread as stdthread;

    pub use stdthread::{Result, Scope, ScopedJoinHandle};

    /// Runs `f` with a scope in which borrowing spawned threads can be
    /// created; all are joined before this returns. Unlike crossbeam this
    /// cannot observe child panics as an `Err` — std's scope re-raises
    /// them — so the `Result` is always `Ok`.
    pub fn scope<'env, F, T>(f: F) -> Result<T>
    where
        F: for<'scope> FnOnce(&'scope stdthread::Scope<'scope, 'env>) -> T,
    {
        Ok(stdthread::scope(f))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut totals = vec![0u64; 2];
        super::scope(|s| {
            let (lo, hi) = totals.split_at_mut(1);
            let (a, b) = data.split_at(2);
            s.spawn(|| lo[0] = a.iter().sum());
            s.spawn(|| hi[0] = b.iter().sum());
        })
        .unwrap();
        assert_eq!(totals, vec![3, 7]);
    }
}
