//! Offline stand-in for `proptest`.
//!
//! Supplies the subset the workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, `prop_map`, and
//! `collection::vec`. Inputs are drawn from a splitmix64 stream seeded
//! deterministically from the test's module path and name, so every run
//! explores the same cases (no shrinking — a failing case prints its
//! number and seed instead).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Everything tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Deterministic input generator handed to strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // sweeping each input space.
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128 - self.start as i128) as u64;
                assert!(width > 0, "empty integer range strategy");
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property: `cases` deterministic inputs, panicking with the
/// failing case's number and seed on the first `Err`.
pub fn run_cases<F>(cfg: ProptestConfig, module: &str, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    // FNV-1a over module::name gives each property its own seed stream.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in module.as_bytes().iter().chain(b"::").chain(name.as_bytes()) {
        seed ^= u64::from(*b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..cfg.cases {
        let case_seed = seed.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(case_seed);
        if let Err(msg) = f(&mut rng) {
            panic!(
                "proptest: property `{name}` failed at case {case}/{} (seed {case_seed:#x}): {msg}",
                cfg.cases
            );
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $fname:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $fname() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__cfg, module_path!(), stringify!($fname), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Fails the surrounding property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 3u64..9, m in 0usize..4) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(m < 4);
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((0.0f64..1.0, 0u32..10), 2..6),
            y in (0u64..100).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(y % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }
}
