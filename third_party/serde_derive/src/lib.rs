//! `#[derive(Serialize, Deserialize)]` for the offline serde stub.
//!
//! `syn`/`quote` live on crates.io, which this build environment cannot
//! reach, so the input item is parsed directly off the `proc_macro` token
//! stream. Supported shapes — the only ones the workspace uses:
//!
//! * structs with named fields      -> JSON object, field order preserved
//! * tuple structs with one field   -> the inner value (newtype)
//! * tuple structs with 2+ fields   -> JSON array
//! * enums with only unit variants  -> the variant name as a string
//!
//! Anything else (generics, data-carrying enums) is rejected with a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the input item turned out to be.
enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(A, …);` — number of unnamed fields.
    Tuple(usize),
    /// `enum E { V1, V2 }` — unit variant names.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing --------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    // Skip attributes and visibility to reach `struct` / `enum`.
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the bracket group of the attribute
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc: the paren group (if any) is
                // consumed by the generic skip below.
            }
            Some(TokenTree::Group(_)) => {} // visibility restriction group
            Some(_) => {}
            None => return Err("serde stub: no struct/enum found".into()),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected type name, got {other:?}")),
    };
    match toks.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "serde stub: generic type `{name}` is not supported by the offline serde derive"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Item { name, shape: Shape::Named(parse_named_fields(g.stream())?) })
            } else {
                Ok(Item { name, shape: Shape::UnitEnum(parse_unit_variants(g.stream())?) })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde stub: unexpected parentheses after enum name".into());
            }
            Ok(Item { name, shape: Shape::Tuple(count_tuple_fields(g.stream())) })
        }
        other => Err(format!("serde stub: unsupported item body for `{name}`: {other:?}")),
    }
}

/// Splits a brace/paren group's stream on top-level commas.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => chunks.push(Vec::new()),
            _ => chunks.last_mut().unwrap().push(t),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// `#[attr] pub name: Type` -> `name` (the first ident after attributes
/// and visibility that is immediately followed by `:`).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            while i < chunk.len() {
                match &chunk[i] {
                    TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr + group
                    TokenTree::Ident(id) if id.to_string() == "pub" => {
                        i += 1;
                        if matches!(chunk.get(i), Some(TokenTree::Group(_))) {
                            i += 1; // pub(crate) etc.
                        }
                    }
                    TokenTree::Ident(id) => {
                        if matches!(chunk.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == ':')
                        {
                            return Ok(id.to_string());
                        }
                        return Err(format!("serde stub: malformed field near `{id}`"));
                    }
                    other => return Err(format!("serde stub: unexpected token {other:?}")),
                }
            }
            Err("serde stub: empty field".into())
        })
        .collect()
}

/// Variant names of an all-unit enum; data-carrying variants are rejected.
fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut name = None;
            for (i, t) in chunk.iter().enumerate() {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '#' => continue,
                    TokenTree::Group(_) if name.is_none() => continue, // attr payload
                    TokenTree::Ident(id) if name.is_none() => {
                        name = Some(id.to_string());
                        if chunk.len() > i + 1 {
                            return Err(format!(
                                "serde stub: enum variant `{id}` carries data; only unit \
                                 variants are supported by the offline serde derive"
                            ));
                        }
                    }
                    other => return Err(format!("serde stub: unexpected token {other:?}")),
                }
            }
            name.ok_or_else(|| "serde stub: empty enum variant".to_string())
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

// ---- code generation ------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string())"))
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                     \"expected array for tuple struct {name}\"))?;\n\
                 if __s.len() != {n} {{\n\
                     return Err(::serde::Error::custom(\"wrong arity for {name}\"));\n\
                 }}\n\
                 Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {},\n\
                         __other => Err(::serde::Error::custom(format!(\
                             \"unknown {name} variant {{__other:?}}\"))),\n\
                     }},\n\
                     __other => Err(::serde::Error::custom(format!(\
                         \"expected string for {name}, got {{__other:?}}\"))),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
