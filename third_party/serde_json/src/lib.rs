//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the serde stub's [`Value`] tree. The
//! emitter preserves object-field insertion order (so output is
//! deterministic) and prints floats with Rust's shortest round-trip
//! formatting; the parser is a plain recursive-descent JSON reader.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes any [`Serialize`] value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Converts a [`Serialize`] value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a [`Deserialize`] type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

// ---- emitter --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float formatting.
                let _ = write!(out, "{x}");
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected `{:?}` at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i32>("-12").unwrap(), -12);
        let x: f64 = from_str(&to_string(&0.1f64).unwrap()).unwrap();
        assert_eq!(x, 0.1);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1u64, -2i64), (3, -4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,-2],[3,-4]]");
        assert_eq!(from_str::<Vec<(u64, i64)>>(&s).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("2.5").unwrap(), Some(2.5));
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}é";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.5tail").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
