//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API subset the workspace consumes: a small, fast,
//! seedable generator (`rngs::SmallRng`, here xoshiro256++), the
//! `SeedableRng` constructor and the `RngExt` sampling surface
//! (`random::<T>()` and `random_range(lo..hi)`).
//!
//! Determinism is the only contract that matters to the simulator: the same
//! seed must always produce the same stream. The stream does **not** match
//! upstream `rand`'s byte-for-byte (nothing in the workspace depends on
//! that; every expectation is derived from in-repo seeds).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences over any [`RngCore`] (the subset of upstream
/// `rand`'s `Rng`/`RngExt` the workspace uses).
pub trait RngExt: RngCore + Sized {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their domain).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a half-open range. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> RngExt for T {}

/// Types with a standard distribution for [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased-enough bounded sample via 128-bit widening multiply (Lemire).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, width) as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, u16, u8, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family upstream `SmallRng` uses on 64-bit
    /// targets. Seeded through splitmix64 per the reference implementation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let s = [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Exposes the raw xoshiro256++ state so callers can persist a
        /// generator mid-stream (checkpoint/restore).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`state`].
        /// The continuation stream is bit-identical to the original's.
        ///
        /// [`state`]: SmallRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let u = r.random_range(3u64..17);
            assert!((3..17).contains(&u));
            let s = r.random_range(0usize..4);
            assert!(s < 4);
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
