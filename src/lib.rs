//! # surgescope
//!
//! A measurement and audit toolkit for opaque ride-sharing marketplaces,
//! reproducing **"Peeking Beneath the Hood of Uber"** (Chen, Mislove,
//! Wilson — IMC 2015) end-to-end in Rust.
//!
//! The workspace has two halves:
//!
//! * a **simulated marketplace** standing in for the black-box service
//!   the paper audited — agent-based drivers and riders
//!   ([`marketplace`]), a faithful protocol surface with the nearest-8
//!   pingClient feed, rate-limited estimates API and the April-2015
//!   stale-multiplier bug ([`api`]), city models ([`city`]), and a taxi
//!   ground-truth replay for validation ([`taxi`]);
//! * the **audit toolkit** — emulated client fleets, calibration,
//!   supply/demand estimation, surge-area inference, forecasting and the
//!   surge-avoidance strategy ([`core`]), backed by a small statistics
//!   library ([`analysis`]).
//!
//! ## Quickstart
//!
//! ```
//! use surgescope::city::CityModel;
//! use surgescope::core::{Campaign, CampaignConfig};
//!
//! // Run a 2-hour measurement campaign against a scaled-down Manhattan.
//! let cfg = CampaignConfig {
//!     hours: 2,
//!     ..CampaignConfig::test_default(42)
//! };
//! let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);
//!
//! // 44 clients pinged every 5 seconds for 2 hours.
//! assert_eq!(data.ticks, 2 * 720);
//! assert!(!data.clients.is_empty());
//!
//! // The estimator measured UberX supply per 5-minute interval…
//! let supply = data.estimator.supply_series(surgescope::city::CarType::UberX);
//! assert_eq!(supply.len(), data.intervals);
//! // …and the simulator kept ground truth the paper never had.
//! assert!(!data.truth.intervals.is_empty());
//! ```
//!
//! See the `examples/` directory for realistic scenarios and the
//! `repro` binary (`cargo run --release -p surgescope-experiments --bin
//! repro -- all`) to regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use surgescope_analysis as analysis;
pub use surgescope_api as api;
pub use surgescope_city as city;
pub use surgescope_core as core;
pub use surgescope_geo as geo;
pub use surgescope_marketplace as marketplace;
pub use surgescope_simcore as simcore;
pub use surgescope_taxi as taxi;
