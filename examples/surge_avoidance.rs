//! The §6 surge-avoidance strategy as a rider-facing advisor.
//!
//! A rider stands near Union Square in a surging downtown SF. Every
//! 5-minute interval the advisor queries the API for the home area's
//! multiplier and every adjacent area's multiplier and EWT, then
//! recommends either "request here" or "reserve in area X and walk".
//!
//! ```sh
//! cargo run --release --example surge_avoidance
//! ```

use surgescope::api::{ApiService, ProtocolEra, WorldSnapshot};
use surgescope::city::{CarType, CityModel};
use surgescope::core::avoidance::walk_minutes_to_area;
use surgescope::geo::Meters;
use surgescope::marketplace::{Marketplace, MarketplaceConfig};
use surgescope::simcore::SimDuration;

fn main() {
    let mut city = CityModel::san_francisco_downtown();
    city.supply = city.supply.scaled(0.4);
    city.demand = city.demand.scaled(0.4);

    let rider = Meters::new(1500.0, 950.0); // Union Square
    let home = city.area_of(rider).expect("rider inside the service region").0;
    println!(
        "rider near Union Square, home surge area: {} ({})",
        home, city.areas[home].name
    );

    let mut mp = Marketplace::new(city.clone(), MarketplaceConfig::default(), 23);
    let mut api = ApiService::new(ProtocolEra::Apr2015, 23);

    // Evening rush: 17:30 onward, checking once per surge interval.
    mp.run_for(SimDuration::secs(17 * 3600 + 1800));
    println!("\n  time     here   best alternative                    advice");
    let mut wins = 0u32;
    let mut checks = 0u32;
    for _ in 0..24 {
        mp.run_for(SimDuration::mins(5));
        let snap = WorldSnapshot::of(&mp);
        let account = 9;
        let here = api
            .estimates_price(&snap, account, city.projection.to_latlng(rider))
            .unwrap()
            .into_iter()
            .find(|p| p.car_type == CarType::UberX)
            .map(|p| p.surge_multiplier)
            .unwrap_or(1.0);
        if here <= 1.0 {
            println!("  {}  ×{here:.1}   —                                   request here (no surge)", mp.now());
            continue;
        }
        checks += 1;
        // Probe each adjacent area's price and EWT at its centroid.
        let mut best: Option<(usize, f64, f64, f64)> = None; // (area, m, walk, ewt)
        for n in &city.adjacency[home] {
            let centroid = city.areas[n.0].polygon.centroid();
            let loc = city.projection.to_latlng(centroid);
            let m = api
                .estimates_price(&snap, account, loc)
                .unwrap()
                .into_iter()
                .find(|p| p.car_type == CarType::UberX)
                .map(|p| p.surge_multiplier)
                .unwrap_or(1.0);
            let ewt_min = api
                .estimates_time(&snap, account, loc)
                .unwrap()
                .into_iter()
                .find(|t| t.car_type == CarType::UberX)
                .map(|t| t.estimate_secs as f64 / 60.0)
                .unwrap_or(0.0);
            let walk = walk_minutes_to_area(&city, rider, n.0);
            if m < here && walk <= ewt_min && best.map_or(true, |(_, bm, _, _)| m < bm) {
                best = Some((n.0, m, walk, ewt_min));
            }
        }
        match best {
            Some((a, m, walk, ewt)) => {
                wins += 1;
                println!(
                    "  {}  ×{here:.1}   area {a}: ×{m:.1}, walk {walk:.1} min ≤ EWT {ewt:.1}   RESERVE THERE — save ×{:.1}",
                    mp.now(),
                    here - m
                );
            }
            None => println!(
                "  {}  ×{here:.1}   no adjacent area qualifies           pay the surge (or wait 5 min)",
                mp.now()
            ),
        }
    }
    println!(
        "\nsummary: walking beat the local surge in {wins} of {checks} surged checks"
    );
}
