//! A full measurement campaign, §3-style: calibrate the visibility
//! radius, blanket the measurement region with emulated clients, collect
//! for six hours, estimate supply and demand — then do what the paper
//! could not and score the estimates against ground truth.
//!
//! ```sh
//! cargo run --release --example measurement_campaign
//! ```

use surgescope::api::{ApiService, ProtocolEra};
use surgescope::city::{CarType, CityModel};
use surgescope::core::calibration;
use surgescope::core::{Campaign, CampaignConfig, UberSystem};
use surgescope::marketplace::{Marketplace, MarketplaceConfig};
use surgescope::simcore::SimDuration;

fn main() {
    let scale = 0.4;
    let mut city = CityModel::manhattan_midtown();
    city.supply = city.supply.scaled(scale);
    city.demand = city.demand.scaled(scale);

    // --- §3.4 calibration --------------------------------------------------
    println!("== calibration ==");
    let center = city.measurement_region.centroid();
    {
        let mut mp = Marketplace::new(city.clone(), MarketplaceConfig::default(), 11);
        mp.run_for(SimDuration::hours(12)); // noon density
        let mut sys = UberSystem::new(mp, ApiService::new(ProtocolEra::Feb2015, 11));

        let det = calibration::determinism_check(&mut sys, center, 43, 60);
        println!(
            "determinism: {} ({} of {} rounds diverged)",
            if det.is_deterministic() { "PASS" } else { "FAIL" },
            det.divergent_rounds,
            det.rounds
        );

        match calibration::visibility_radius(&mut sys, center, CarType::UberX, 300) {
            Some(r) => println!("visibility radius at noon: {r:.0} m"),
            None => println!("visibility radius: not measurable (no shared cars)"),
        }
    }

    // --- the campaign ------------------------------------------------------
    println!("\n== campaign (6 h, 44 clients, ping every 5 s) ==");
    let cfg = CampaignConfig {
        seed: 11,
        hours: 6,
        era: ProtocolEra::Apr2015,
        scale,
        ..CampaignConfig::test_default(11)
    };
    let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);

    let measured_supply = data.estimator.supply_series(CarType::UberX);
    let measured_deaths = data.estimator.death_series(CarType::UberX);

    // Ground truth the paper never had: average true UberX-idle counts and
    // true pickups per interval across the measurement region's areas.
    let mut true_pickups = vec![0u32; data.intervals];
    for s in &data.truth.intervals {
        if (s.interval as usize) < data.intervals {
            true_pickups[s.interval as usize] += s.pickups;
        }
    }

    println!("interval  measured supply  measured deaths  true pickups");
    for iv in (0..data.intervals).step_by(12) {
        println!(
            "{:>8}  {:>15}  {:>15}  {:>12}",
            iv,
            measured_supply.get(iv).copied().unwrap_or(0),
            measured_deaths.get(iv).copied().unwrap_or(0),
            true_pickups[iv]
        );
    }

    let sum = |v: &[u32]| v.iter().map(|&x| x as u64).sum::<u64>();
    let d = sum(measured_deaths) as f64;
    let p = sum(&true_pickups) as f64;
    println!(
        "\ntotals: measured deaths {d:.0} vs true pickups {p:.0} ({:.0}% captured)",
        100.0 * d / p.max(1.0)
    );
    println!(
        "data cleaning: {} short-lived cars filtered, {} edge-filtered disappearances",
        data.estimator.short_lived_filtered, data.estimator.edge_filtered
    );
    println!(
        "lifespans recorded: {}   sessions started (truth): {}",
        data.estimator.lifespans.len(),
        data.truth.sessions_started
    );

    // --- the same campaign on a faulty link --------------------------------
    // Real clients rode cellular networks: pings get dropped and delayed.
    // Dropped ticks are NaN gaps (never fabricated 1.0× samples); delayed
    // responses surface ticks late carrying send-time content.
    println!("\n== campaign replay over a lossy transport (10% drop, 10% delay ≤30 s) ==");
    let faulted = Campaign::run_uber(
        CityModel::manhattan_midtown(),
        &CampaignConfig {
            faults: surgescope::simcore::FaultPlan {
                drop_chance: 0.10,
                delay_chance: 0.10,
                max_delay_secs: 30,
            },
            ..cfg
        },
    );
    let total = (faulted.ticks * faulted.clients.len()) as f64;
    let gaps = faulted
        .client_surge
        .iter()
        .flatten()
        .filter(|v| v.is_nan())
        .count() as f64;
    let clean = sum(measured_supply) as f64;
    let lossy = sum(faulted.estimator.supply_series(CarType::UberX)) as f64;
    println!(
        "gaps: {:.1}% of ticks   measured supply: {lossy:.0} vs clean {clean:.0} ({:+.1}%)",
        100.0 * gaps / total,
        100.0 * (lossy - clean) / clean.max(1.0)
    );
}
