//! Quickstart: boot a simulated city, let the marketplace run for a busy
//! hour, then look at it exactly the way the paper's clients did —
//! through the pingClient protocol and the estimates API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use surgescope::api::{ApiService, ProtocolEra, WorldSnapshot};
use surgescope::city::{CarType, CityModel};
use surgescope::marketplace::{Marketplace, MarketplaceConfig};
use surgescope::simcore::SimDuration;

fn main() {
    // A scaled-down midtown Manhattan so the example runs in seconds.
    let mut city = CityModel::manhattan_midtown();
    city.supply = city.supply.scaled(0.4);
    city.demand = city.demand.scaled(0.4);

    let mut mp = Marketplace::new(city, MarketplaceConfig::default(), 7);

    // Fast-forward to the morning rush.
    println!("simulating 08:00 → 09:00 …");
    mp.run_for(SimDuration::hours(9));

    println!(
        "{}: {} drivers online, {} visible (idle), {} trips so far",
        mp.now(),
        mp.online_count(),
        mp.visible_cars().len(),
        mp.truth().trips.len()
    );

    // Open the app: ping from Times Square.
    let api = ApiService::new(ProtocolEra::Apr2015, 7);
    let snap = WorldSnapshot::of(&mp);
    let times_square = mp.city().projection.to_latlng(
        surgescope::geo::Meters::new(600.0, 350.0),
    );
    let resp = api.ping_client(&snap, /* client key */ 1, times_square);

    println!("\npingClient from Times Square at {}:", resp.at);
    for s in &resp.statuses {
        if s.cars.is_empty() {
            continue;
        }
        println!(
            "  {:<11} {} cars in view, EWT {:>4.1} min, surge ×{:.1}",
            s.car_type.to_string(),
            s.cars.len(),
            s.ewt_min,
            s.surge
        );
    }

    // And the developer API, as a third-party app would use it.
    let mut api = api;
    let prices = api
        .estimates_price(&snap, /* account */ 42, times_square)
        .expect("within rate limit");
    println!("\nestimates/price (reference 5-mile / 15-minute trip):");
    for p in prices.iter().filter(|p| p.car_type == CarType::UberX || p.car_type == CarType::UberBlack) {
        println!(
            "  {:<11} ${:>3.0}–${:>3.0}  (surge ×{:.1})",
            p.car_type.to_string(),
            p.low_estimate,
            p.high_estimate,
            p.surge_multiplier
        );
    }
    println!(
        "\nremaining API quota this hour: {}",
        api.remaining_quota(42, mp.now())
    );
}
