//! The driver's side of surge: how much of a day's earnings come from
//! surged fares, and does repositioning toward surging areas pay?
//!
//! Runs one simulated weekday in downtown SF and breaks down completed
//! trips by the multiplier that priced them — the supply-side incentive
//! the paper's Fig. 22 investigates.
//!
//! ```sh
//! cargo run --release --example driver_shift
//! ```

use surgescope::city::{CarType, CityModel};
use surgescope::marketplace::{Marketplace, MarketplaceConfig};
use surgescope::simcore::SimDuration;

fn main() {
    let mut city = CityModel::san_francisco_downtown();
    city.supply = city.supply.scaled(0.4);
    city.demand = city.demand.scaled(0.4);

    let mut mp = Marketplace::new(city, MarketplaceConfig::default(), 31);
    println!("simulating one weekday in downtown SF …");
    mp.run_for(SimDuration::days(1));

    let trips: Vec<_> = mp
        .truth()
        .trips
        .iter()
        .filter(|t| t.fare.is_some() && t.car_type == CarType::UberX)
        .collect();

    let mut buckets: Vec<(&str, f64, f64, u32, f64)> = vec![
        // label, lo, hi, trips, gross
        ("×1.0 (no surge)", 0.99, 1.001, 0, 0.0),
        ("×1.1–1.5", 1.001, 1.5001, 0, 0.0),
        ("×1.6–2.0", 1.5001, 2.0001, 0, 0.0),
        ("×2.1+", 2.0001, f64::INFINITY, 0, 0.0),
    ];
    for t in &trips {
        let fare = t.fare.unwrap();
        for b in buckets.iter_mut() {
            if t.surge > b.1 && t.surge <= b.2 {
                b.3 += 1;
                b.4 += fare;
            }
        }
    }

    let gross: f64 = trips.iter().map(|t| t.fare.unwrap()).sum();
    let n = trips.len().max(1);
    println!("\ncompleted UberX trips: {n}   fleet gross: ${gross:.0}");
    println!("\n{:<17} {:>6} {:>8} {:>9} {:>10}", "surge bucket", "trips", "% trips", "gross $", "% gross");
    for (label, _, _, count, sum) in &buckets {
        println!(
            "{:<17} {:>6} {:>7.1}% {:>9.0} {:>9.1}%",
            label,
            count,
            100.0 * *count as f64 / n as f64,
            sum,
            100.0 * sum / gross.max(1.0)
        );
    }

    // Drivers keep 80% (the service retains 20%, §2).
    let sessions = mp.truth().sessions_started.max(1);
    println!(
        "\ndriver take-home (80%): ${:.0} across {} driver-sessions ≈ ${:.0}/session",
        gross * 0.8,
        sessions,
        gross * 0.8 / sessions as f64
    );

    // The paper's supply-side question: were surged trips *worth* more?
    let surged: Vec<f64> = trips.iter().filter(|t| t.surge > 1.0).map(|t| t.fare.unwrap()).collect();
    let flat: Vec<f64> = trips.iter().filter(|t| t.surge <= 1.0).map(|t| t.fare.unwrap()).collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\naverage fare: surged ${:.2} vs unsurged ${:.2} ({:+.0}%)",
        avg(&surged),
        avg(&flat),
        100.0 * (avg(&surged) / avg(&flat).max(0.01) - 1.0)
    );
}
