//! Whole-pipeline determinism: a campaign is a pure function of its seed.
//!
//! The paper's calibration (§3.4) established that pingClient responses
//! are deterministic; our reproduction makes the *entire* run replayable,
//! which every other test and experiment relies on.

use surgescope::api::ProtocolEra;
use surgescope::city::{CarType, CityModel};
use surgescope::core::{Campaign, CampaignConfig};

fn fingerprint(seed: u64) -> (Vec<u32>, Vec<f32>, u64, usize) {
    let cfg = CampaignConfig {
        hours: 2,
        era: ProtocolEra::Apr2015,
        ..CampaignConfig::test_default(seed)
    };
    let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);
    (
        data.estimator.supply_series(CarType::UberX).to_vec(),
        data.client_surge[0].clone(),
        data.truth.sessions_started,
        data.truth.trips.len(),
    )
}

#[test]
fn same_seed_same_campaign() {
    let a = fingerprint(4242);
    let b = fingerprint(4242);
    assert_eq!(a.0, b.0, "supply series must replay bit-for-bit");
    assert_eq!(a.1, b.1, "client surge stream must replay bit-for-bit");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

/// The per-tick client fan-out must be a pure reordering of work: any
/// `parallelism` value has to reproduce the serial observation series
/// bit-for-bit (fault draws run on a serial pre-pass; pings are pure
/// functions of the tick snapshot written back by client index).
#[test]
fn parallel_fanout_matches_serial_bit_for_bit() {
    let run = |threads: usize| {
        let cfg = CampaignConfig {
            hours: 1,
            era: ProtocolEra::Apr2015,
            parallelism: threads,
            ..CampaignConfig::test_default(777)
        };
        Campaign::run_uber(CityModel::manhattan_midtown(), &cfg)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.client_surge, parallel.client_surge, "client surge series diverged");
    assert_eq!(serial.client_ewt, parallel.client_ewt, "client EWT series diverged");
    assert_eq!(serial.api_surge, parallel.api_surge, "API surge series diverged");
    assert_eq!(serial.api_ewt, parallel.api_ewt, "API EWT series diverged");
    assert_eq!(serial.avg_visible, parallel.avg_visible, "visible-car series diverged");
    assert_eq!(serial.client_daily_cars, parallel.client_daily_cars);
    assert_eq!(serial.truth.trips.len(), parallel.truth.trips.len());
    assert_eq!(
        serial.estimator.supply_series(CarType::UberX),
        parallel.estimator.supply_series(CarType::UberX),
    );
}

/// The guarantee must also hold with transport faults on: drops punch NaN
/// gaps and delays reroute payloads through the in-flight queue, but both
/// happen on serial passes in client order, so the faulted series too is a
/// pure function of the seed. (`Vec<f32>` equality can't be used — NaN
/// gaps fail `==` against themselves — so series compare as bit patterns.)
#[test]
fn faulted_campaign_bit_identical_across_parallelism() {
    use surgescope::simcore::FaultPlan;
    let run = |threads: usize| {
        let cfg = CampaignConfig {
            hours: 1,
            era: ProtocolEra::Apr2015,
            parallelism: threads,
            faults: FaultPlan { drop_chance: 0.15, delay_chance: 0.15, max_delay_secs: 30 },
            ..CampaignConfig::test_default(888)
        };
        Campaign::run_uber(CityModel::manhattan_midtown(), &cfg)
    };
    let bits = |series: &[Vec<f32>]| -> Vec<Vec<u32>> {
        series.iter().map(|s| s.iter().map(|v| v.to_bits()).collect()).collect()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        bits(&serial.client_surge),
        bits(&parallel.client_surge),
        "faulted surge series diverged"
    );
    assert_eq!(
        bits(&serial.client_ewt),
        bits(&parallel.client_ewt),
        "faulted EWT series diverged"
    );
    assert_eq!(serial.client_delivered, parallel.client_delivered);
    assert_eq!(serial.api_surge, parallel.api_surge, "API probes diverged");
    assert_eq!(serial.avg_visible, parallel.avg_visible);
    assert_eq!(serial.client_daily_cars, parallel.client_daily_cars);
    assert_eq!(
        serial.estimator.supply_series(CarType::UberX),
        parallel.estimator.supply_series(CarType::UberX),
    );
    // The plan must have actually perturbed something.
    let gaps: usize = serial
        .client_surge
        .iter()
        .flatten()
        .filter(|v| v.is_nan())
        .count();
    assert!(gaps > 0, "fault plan never dropped a ping; test is vacuous");
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    // Poisson arrivals virtually guarantee differing trip counts.
    assert!(
        a.0 != b.0 || a.3 != b.3,
        "distinct seeds should produce distinct worlds"
    );
}
