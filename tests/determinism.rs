//! Whole-pipeline determinism: a campaign is a pure function of its seed.
//!
//! The paper's calibration (§3.4) established that pingClient responses
//! are deterministic; our reproduction makes the *entire* run replayable,
//! which every other test and experiment relies on.

use surgescope::api::ProtocolEra;
use surgescope::city::{CarType, CityModel};
use surgescope::core::{Campaign, CampaignConfig};

fn fingerprint(seed: u64) -> (Vec<u32>, Vec<f32>, u64, usize) {
    let cfg = CampaignConfig {
        hours: 2,
        era: ProtocolEra::Apr2015,
        ..CampaignConfig::test_default(seed)
    };
    let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);
    (
        data.estimator.supply_series(CarType::UberX).to_vec(),
        data.client_surge[0].clone(),
        data.truth.sessions_started,
        data.truth.trips.len(),
    )
}

#[test]
fn same_seed_same_campaign() {
    let a = fingerprint(4242);
    let b = fingerprint(4242);
    assert_eq!(a.0, b.0, "supply series must replay bit-for-bit");
    assert_eq!(a.1, b.1, "client surge stream must replay bit-for-bit");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn different_seeds_differ() {
    let a = fingerprint(1);
    let b = fingerprint(2);
    // Poisson arrivals virtually guarantee differing trip counts.
    assert!(
        a.0 != b.0 || a.3 != b.3,
        "distinct seeds should produce distinct worlds"
    );
}
