//! Transport-fault robustness: the estimators must tolerate lossy
//! client↔service links (the real study rode on cellular networks).

use surgescope::api::{ApiService, ProtocolEra};
use surgescope::city::{CarType, CityModel};
use surgescope::core::calibration::placement;
use surgescope::core::estimate::{EstimatorConfig, SupplyDemandEstimator};
use surgescope::core::{MeasuredSystem, UberSystem};
use surgescope::marketplace::{Marketplace, MarketplaceConfig};
use surgescope::simcore::{FaultPlan, SimDuration};

/// Runs a 4-hour daytime measurement with the given fault plan and
/// returns total measured UberX supply and deaths.
fn measure_with_faults(plan: FaultPlan) -> (u64, u64) {
    let mut city = CityModel::manhattan_midtown();
    city.supply = city.supply.scaled(0.35);
    city.demand = city.demand.scaled(0.35);
    let clients = placement(&city.measurement_region, city.client_spacing_m);

    let mut mp = Marketplace::new(city.clone(), MarketplaceConfig::default(), 2024);
    mp.run_for(SimDuration::hours(8)); // warm to mid-morning
    let mut sys = UberSystem::new(mp, ApiService::new(ProtocolEra::Apr2015, 2024))
        .with_faults(plan, 7);

    let mut est = SupplyDemandEstimator::new(
        EstimatorConfig::default(),
        city.measurement_region.clone(),
        vec![],
    );
    for _ in 0..(4 * 720) {
        sys.advance_tick();
        let now = sys.now();
        for blocks in sys.ping_all(&clients) {
            est.observe(now, &blocks);
        }
        est.end_tick(now);
    }
    est.finish(sys.now());
    let sum = |v: &[u32]| v.iter().map(|&x| x as u64).sum::<u64>();
    (
        sum(est.supply_series(CarType::UberX)),
        sum(est.death_series(CarType::UberX)),
    )
}

#[test]
fn estimates_survive_ten_percent_loss() {
    let (clean_supply, clean_deaths) = measure_with_faults(FaultPlan::none());
    let (lossy_supply, lossy_deaths) = measure_with_faults(FaultPlan::lossy(0.10));
    assert!(clean_supply > 0 && clean_deaths > 0);

    // With 43 clients pinging every 5 s and a 15 s death grace, a 10%
    // drop rate should barely dent the counts: every car is covered by
    // many client views and several chances per grace window.
    let supply_ratio = lossy_supply as f64 / clean_supply as f64;
    assert!(
        (0.9..=1.1).contains(&supply_ratio),
        "supply ratio {supply_ratio} under 10% loss"
    );
    let death_ratio = lossy_deaths as f64 / clean_deaths as f64;
    assert!(
        (0.7..=1.3).contains(&death_ratio),
        "death ratio {death_ratio} under 10% loss"
    );
}

#[test]
fn heavy_loss_degrades_gracefully_not_catastrophically() {
    let (clean_supply, _) = measure_with_faults(FaultPlan::none());
    let (heavy_supply, _) = measure_with_faults(FaultPlan::lossy(0.5));
    // Half the pings gone: unique-ID supply counts should still be in the
    // same ballpark (redundancy across clients), never collapse to zero.
    let ratio = heavy_supply as f64 / clean_supply as f64;
    assert!(
        ratio > 0.6,
        "supply collapsed to {ratio} of clean under 50% loss"
    );
}
