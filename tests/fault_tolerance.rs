//! Transport-fault robustness: the estimators must tolerate lossy
//! client↔service links (the real study rode on cellular networks).

use surgescope::api::{ApiService, ProtocolEra};
use surgescope::city::{CarType, CityModel};
use surgescope::core::calibration::placement;
use surgescope::core::estimate::{EstimatorConfig, SupplyDemandEstimator};
use surgescope::core::{MeasuredSystem, UberSystem};
use surgescope::marketplace::{Marketplace, MarketplaceConfig};
use surgescope::simcore::{FaultPlan, SimDuration};

/// Runs a 4-hour daytime measurement with the given fault plan and
/// returns total measured UberX supply and deaths.
fn measure_with_faults(plan: FaultPlan) -> (u64, u64) {
    let mut city = CityModel::manhattan_midtown();
    city.supply = city.supply.scaled(0.35);
    city.demand = city.demand.scaled(0.35);
    let clients = placement(&city.measurement_region, city.client_spacing_m);

    let mut mp = Marketplace::new(city.clone(), MarketplaceConfig::default(), 2024);
    mp.run_for(SimDuration::hours(8)); // warm to mid-morning
    let mut sys = UberSystem::new(mp, ApiService::new(ProtocolEra::Apr2015, 2024))
        .with_faults(plan, 7);

    let mut est = SupplyDemandEstimator::new(
        EstimatorConfig::default(),
        city.measurement_region.clone(),
        vec![],
    );
    for _ in 0..(4 * 720) {
        sys.advance_tick();
        let now = sys.now();
        for blocks in sys.ping_all(&clients) {
            est.observe(now, &blocks);
        }
        est.end_tick(now);
    }
    est.finish(sys.now());
    let sum = |v: &[u32]| v.iter().map(|&x| x as u64).sum::<u64>();
    (
        sum(est.supply_series(CarType::UberX)),
        sum(est.death_series(CarType::UberX)),
    )
}

#[test]
fn estimates_survive_ten_percent_loss() {
    let (clean_supply, clean_deaths) = measure_with_faults(FaultPlan::none());
    let (lossy_supply, lossy_deaths) = measure_with_faults(FaultPlan::lossy(0.10));
    assert!(clean_supply > 0 && clean_deaths > 0);

    // With 43 clients pinging every 5 s and a 15 s death grace, a 10%
    // drop rate should barely dent the counts: every car is covered by
    // many client views and several chances per grace window.
    let supply_ratio = lossy_supply as f64 / clean_supply as f64;
    assert!(
        (0.9..=1.1).contains(&supply_ratio),
        "supply ratio {supply_ratio} under 10% loss"
    );
    let death_ratio = lossy_deaths as f64 / clean_deaths as f64;
    assert!(
        (0.7..=1.3).contains(&death_ratio),
        "death ratio {death_ratio} under 10% loss"
    );
}

#[test]
fn heavy_loss_degrades_gracefully_not_catastrophically() {
    let (clean_supply, _) = measure_with_faults(FaultPlan::none());
    let (heavy_supply, _) = measure_with_faults(FaultPlan::lossy(0.5));
    // Half the pings gone: unique-ID supply counts should still be in the
    // same ballpark (redundancy across clients), never collapse to zero.
    let ratio = heavy_supply as f64 / clean_supply as f64;
    assert!(
        ratio > 0.6,
        "supply collapsed to {ratio} of clean under 50% loss"
    );
}

/// Campaign-level gap accounting: a dropped ping is a `NaN` hole in the
/// per-client series — never a fabricated 1.0× / 0.0-minute sample — and
/// the number of holes tracks the fault plan's drop chance.
#[test]
fn campaign_records_drops_as_nan_gaps() {
    use surgescope::core::{Campaign, CampaignConfig};
    let drop = 0.15;
    let cfg = CampaignConfig {
        hours: 1,
        faults: FaultPlan::lossy(drop),
        ..CampaignConfig::test_default(52)
    };
    let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);
    let total = data.ticks * data.clients.len();
    let gaps: usize = data
        .client_surge
        .iter()
        .flatten()
        .filter(|v| v.is_nan())
        .count();
    let rate = gaps as f64 / total as f64;
    assert!(
        (rate - drop).abs() < 0.02,
        "NaN gap rate {rate} should track drop chance {drop}"
    );
    // The delivered-ping ledger agrees exactly with the series' holes.
    let delivered: u64 = data.client_delivered.iter().sum();
    assert_eq!(delivered as usize, total - gaps);
    // No survivor tick carries a fabricated placeholder pair (1.0×, 0.0
    // min would be the old bug's signature on *every* faulted tick; here
    // delivered ticks carry whatever the marketplace actually served).
    assert!(data.client_mean_ewt.iter().all(|m| m.is_finite() && *m > 0.0));
}

/// Delay is not Drop at campaign level: with every ping delayed exactly
/// one tick, each client misses only the very first tick (nothing has
/// arrived yet) and sees stale-but-real data from then on.
#[test]
fn campaign_delayed_pings_fill_later_ticks() {
    use surgescope::core::{Campaign, CampaignConfig};
    let cfg = CampaignConfig {
        hours: 1,
        // delay ≤ 5 s at a 5 s tick: everything exactly one tick late.
        faults: FaultPlan::laggy(1.0, 5),
        ..CampaignConfig::test_default(53)
    };
    let data = Campaign::run_uber(CityModel::manhattan_midtown(), &cfg);
    for (i, s) in data.client_surge.iter().enumerate() {
        assert!(s[0].is_nan(), "client {i}: tick 0 cannot have a delivery");
        assert!(
            s[1..].iter().all(|v| v.is_finite()),
            "client {i}: delayed pings must surface on every later tick"
        );
        assert_eq!(data.client_delivered[i] as usize, data.ticks - 1);
    }
}
