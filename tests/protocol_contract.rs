//! Protocol-surface contract tests, exercised through the public facade:
//! nearest-8 visibility, ID randomization, rate limiting, era semantics.

use surgescope::api::{ApiService, ProtocolEra, WorldSnapshot, NEAREST_CARS_SHOWN};
use surgescope::city::{CarType, CityModel};
use surgescope::geo::Meters;
use surgescope::marketplace::{Marketplace, MarketplaceConfig};
use surgescope::simcore::SimDuration;
use std::collections::HashSet;

fn busy_world(seed: u64) -> Marketplace {
    let mut c = CityModel::san_francisco_downtown();
    c.supply = c.supply.scaled(0.35);
    c.demand = c.demand.scaled(0.35);
    let mut mp = Marketplace::new(c, MarketplaceConfig::default(), seed);
    mp.run_for(SimDuration::hours(9));
    mp
}

#[test]
fn never_more_than_eight_cars_per_tier() {
    let mp = busy_world(1);
    let api = ApiService::new(ProtocolEra::Apr2015, 1);
    let snap = WorldSnapshot::of(&mp);
    for dx in [-800.0, 0.0, 800.0] {
        let pos = mp.city().measurement_region.centroid();
        let loc = mp.city().projection.to_latlng(Meters::new(pos.x + dx, pos.y));
        let resp = api.ping_client(&snap, 5, loc);
        for s in &resp.statuses {
            assert!(s.cars.len() <= NEAREST_CARS_SHOWN);
        }
    }
}

#[test]
fn session_ids_rotate_across_shifts() {
    // Run a day and a half: the same physical drivers cycle online and
    // offline; the set of public IDs must keep growing.
    let mut c = CityModel::manhattan_midtown();
    c.supply = c.supply.scaled(0.25);
    c.demand = c.demand.scaled(0.25);
    let mut mp = Marketplace::new(c, MarketplaceConfig::default(), 3);
    let mut seen: HashSet<u64> = HashSet::new();
    for _ in 0..36 {
        mp.run_for(SimDuration::hours(1));
        for car in mp.visible_cars() {
            seen.insert(car.session.0);
        }
    }
    assert!(
        seen.len() as u64 > mp.online_count() as u64 * 3,
        "only {} distinct ids for a churning fleet",
        seen.len()
    );
    assert_eq!(seen.len() as u64 + 0, seen.len() as u64); // ids unique by set
    assert!(mp.truth().sessions_started as usize >= seen.len() / 2);
}

#[test]
fn rate_limit_is_per_account_per_hour() {
    let mp = busy_world(2);
    let mut api = ApiService::new(ProtocolEra::Apr2015, 2);
    let snap = WorldSnapshot::of(&mp);
    let loc = mp.city().projection.to_latlng(mp.city().measurement_region.centroid());
    for i in 0..1_000 {
        assert!(
            api.estimates_price(&snap, 77, loc).is_ok(),
            "request {i} unexpectedly throttled"
        );
    }
    let err = api.estimates_price(&snap, 77, loc).unwrap_err();
    assert_eq!(err.account, 77);
    assert!(err.retry_after_secs <= 3_600);
    // Other accounts unaffected; pingClient unaffected.
    assert!(api.estimates_price(&snap, 78, loc).is_ok());
    let _ = api.ping_client(&snap, 77, loc);
}

#[test]
fn ubert_never_surges_through_any_endpoint() {
    let mp = busy_world(3);
    let mut api = ApiService::new(ProtocolEra::Apr2015, 3);
    let snap = WorldSnapshot::of(&mp);
    let loc = mp.city().projection.to_latlng(mp.city().measurement_region.centroid());
    let resp = api.ping_client(&snap, 1, loc);
    assert_eq!(resp.surge(CarType::UberT), 1.0);
    let est = api.estimates_price(&snap, 1, loc).unwrap();
    if let Some(p) = est.iter().find(|p| p.car_type == CarType::UberT) {
        assert_eq!(p.surge_multiplier, 1.0);
    }
}

#[test]
fn feb_era_consistent_apr_era_diverges_eventually() {
    let mut c = CityModel::san_francisco_downtown();
    c.supply = c.supply.scaled(0.35);
    c.demand = c.demand.scaled(0.35);
    let mut mp = Marketplace::new(c, MarketplaceConfig::default(), 9);
    mp.run_for(SimDuration::hours(7));

    let feb = ApiService::new(ProtocolEra::Feb2015, 9);
    let apr = ApiService::new(ProtocolEra::Apr2015, 9);
    let loc = mp.city().projection.to_latlng(mp.city().measurement_region.centroid());

    let mut apr_diverged = false;
    for _ in 0..1_440 {
        // two hours of ticks
        mp.tick();
        let snap = WorldSnapshot::of(&mp);
        let f1 = feb.ping_client(&snap, 1, loc).surge(CarType::UberX);
        let f2 = feb.ping_client(&snap, 2, loc).surge(CarType::UberX);
        assert_eq!(f1, f2, "Feb era must be uniform across clients");
        let a1 = apr.ping_client(&snap, 1, loc).surge(CarType::UberX);
        let a2 = apr.ping_client(&snap, 2, loc).surge(CarType::UberX);
        if a1 != a2 {
            apr_diverged = true;
        }
    }
    assert!(
        apr_diverged,
        "two hours of SF surge activity should expose the consistency bug"
    );
}
