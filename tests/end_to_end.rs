//! End-to-end audit: run a campaign against the simulated marketplace and
//! check the measured quantities against ground truth — the comparison
//! the paper could only perform for taxis (§3.5), applied to everything.

use surgescope::api::ProtocolEra;
use surgescope::city::{CarType, CityModel};
use surgescope::core::{Campaign, CampaignConfig};

fn campaign(hours: u64) -> surgescope::core::CampaignData {
    let cfg = CampaignConfig {
        hours,
        era: ProtocolEra::Apr2015,
        scale: 0.35,
        ..CampaignConfig::test_default(77)
    };
    // Midday-ish activity matters more than calendar realism here; the
    // campaign starts at midnight, so use enough hours to reach daytime.
    Campaign::run_uber(CityModel::manhattan_midtown(), &cfg)
}

#[test]
fn measured_supply_tracks_true_idle_supply() {
    let data = campaign(10);
    // True mean idle UberX-share supply per interval (all tiers recorded
    // together in truth; measured is per tier, so compare totals loosely).
    let mut true_idle = vec![0.0f64; data.intervals];
    for s in &data.truth.intervals {
        if (s.interval as usize) < data.intervals {
            true_idle[s.interval as usize] += s.idle_supply;
        }
    }
    // Sum measured supply across every tier.
    let mut measured = vec![0u32; data.intervals];
    for t in CarType::ALL {
        for (iv, v) in data.estimator.supply_series(t).iter().enumerate() {
            if iv < data.intervals {
                measured[iv] += v;
            }
        }
    }
    // Compare the daytime half (supply near zero at 4 a.m. makes ratios
    // meaningless).
    let day = data.intervals / 2..data.intervals;
    let m: f64 = day.clone().map(|i| measured[i] as f64).sum();
    let t: f64 = day.clone().map(|i| true_idle[i]).sum();
    assert!(t > 0.0, "no true idle supply recorded");
    let ratio = m / t;
    // Unique-IDs-per-interval counts churn, so it reads above the mean
    // instantaneous idle count; anything wildly off means the lattice or
    // the estimator is broken.
    assert!(
        (0.7..4.0).contains(&ratio),
        "measured/true supply ratio {ratio} out of band"
    );
}

#[test]
fn measured_deaths_bounded_by_requests() {
    let data = campaign(8);
    let deaths: u64 = CarType::ALL
        .iter()
        .flat_map(|t| data.estimator.death_series(*t).iter())
        .map(|&d| d as u64)
        .sum();
    let requests: u64 =
        data.truth.intervals.iter().map(|s| s.requests as u64).sum();
    let pickups: u64 = data.truth.intervals.iter().map(|s| s.pickups as u64).sum();
    assert!(pickups > 0, "world produced no pickups");
    assert!(deaths > 0, "estimator saw no deaths");
    // Deaths are an upper bound on fulfilled demand but can also include
    // offline transitions; they must stay within the total request volume.
    assert!(
        deaths <= requests * 2,
        "deaths {deaths} wildly exceed requests {requests}"
    );
}

#[test]
fn surge_streams_consistent_between_api_and_truth() {
    let data = campaign(8);
    // The API probe fires after the propagation delay, so its value must
    // equal the ground-truth multiplier for that interval.
    let mut mismatches = 0u32;
    let mut total = 0u32;
    for s in &data.truth.intervals {
        let iv = s.interval as usize;
        if let Some(api_m) = data.api_surge[s.area].get(iv) {
            total += 1;
            if (f64::from(*api_m) - s.surge).abs() > 1e-6 {
                mismatches += 1;
            }
        }
    }
    assert!(total > 0);
    assert_eq!(
        mismatches, 0,
        "API probe disagreed with ground-truth multiplier {mismatches}/{total} times"
    );
}

#[test]
fn ewt_distribution_mostly_short() {
    let data = campaign(10);
    let sample: Vec<f64> = data
        .client_ewt
        .iter()
        .flat_map(|v| v.iter().map(|&x| x as f64))
        .filter(|&x| x > 0.0)
        .collect();
    assert!(!sample.is_empty());
    let le8 = sample.iter().filter(|&&x| x <= 8.0).count() as f64 / sample.len() as f64;
    // The paper's headline is 87% ≤ 4 min; at reduced scale densities we
    // allow a looser bound but the service must remain expedient.
    assert!(le8 > 0.7, "only {le8:.2} of EWTs ≤ 8 min");
}
