//! Audit-pipeline integration: surge-area inference, jitter detection and
//! the avoidance strategy, run over a real (small) campaign.

use surgescope::api::ProtocolEra;
use surgescope::city::CityModel;
use surgescope::core::surge_obs::{detect_jitter, episodes};
use surgescope::core::{avoidance, Campaign, CampaignConfig};

fn sf_campaign(hours: u64, seed: u64) -> surgescope::core::CampaignData {
    let cfg = CampaignConfig {
        hours,
        era: ProtocolEra::Apr2015,
        scale: 0.35,
        ..CampaignConfig::test_default(seed)
    };
    Campaign::run_uber(CityModel::san_francisco_downtown(), &cfg)
}

#[test]
fn jitter_events_have_paper_properties() {
    let data = sf_campaign(10, 99);
    let mut all = Vec::new();
    for (ci, series) in data.client_surge.iter().enumerate() {
        let Some(area) = data.client_area[ci] else { continue };
        all.extend(detect_jitter(series, &data.api_surge[area], data.tick_secs));
    }
    assert!(!all.is_empty(), "an SF day should produce jitter events");
    for e in &all {
        assert!(e.duration < 90, "jitter lasted {}s", e.duration);
        assert!(e.stale_value != e.consensus);
    }
    // The stale value equals the previous interval's consensus by
    // construction of the detector; verify at least that both price
    // directions occur (surges rise and fall).
    let drops = all.iter().filter(|e| e.is_price_drop()).count();
    assert!(drops > 0, "no price-dropping jitter in {} events", all.len());
}

#[test]
fn api_surge_episodes_are_interval_multiples() {
    let data = sf_campaign(8, 100);
    for area in &data.api_surge {
        for d in episodes(area, 300) {
            assert_eq!(d % 300, 0, "API episode of {d}s not a 5-min multiple");
        }
    }
}

#[test]
fn client_fleet_covers_all_areas_and_avoidance_runs() {
    let data = sf_campaign(8, 101);
    let results = avoidance::evaluate(
        &data.city,
        &data.clients,
        &data.client_area,
        &data.api_surge,
        &data.api_ewt,
    );
    assert_eq!(results.len(), data.clients.len());
    // SF surges a lot: most clients must have seen surged intervals.
    let with_surge = results.iter().filter(|r| r.surged_intervals > 0).count();
    assert!(
        with_surge > results.len() / 2,
        "only {with_surge} clients saw surge in SF"
    );
    // Every recorded win must be internally consistent.
    for r in &results {
        assert!(r.beatable <= r.surged_intervals);
        assert_eq!(r.savings.len(), r.beatable);
        for (s, w) in r.savings.iter().zip(&r.walk_minutes) {
            assert!(*s > 0.0, "non-positive saving");
            assert!(*w >= 0.0 && *w < 60.0, "absurd walk {w} min");
        }
    }
}

#[test]
fn feb_era_has_no_subminute_episodes() {
    let cfg = CampaignConfig {
        hours: 8,
        era: ProtocolEra::Feb2015,
        scale: 0.35,
        ..CampaignConfig::test_default(102)
    };
    let data = Campaign::run_uber(CityModel::san_francisco_downtown(), &cfg);
    // Feb-era clients track the API exactly apart from the bounded
    // propagation delay, so episodes shorter than one minute are
    // impossible (the delay is < 40 s but a surge lasts ≥ one interval
    // minus the delay ≥ 4 minutes).
    let mut sub_minute = 0u32;
    let mut total = 0u32;
    for series in &data.client_surge {
        for d in episodes(series, data.tick_secs) {
            total += 1;
            if d < 60 {
                sub_minute += 1;
            }
        }
    }
    assert!(total > 0, "SF should surge during the day");
    assert_eq!(sub_minute, 0, "{sub_minute}/{total} sub-minute episodes in Feb era");
}
