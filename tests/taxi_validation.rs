//! The §3.5 validation, as a pass/fail gate: measuring a replayed taxi
//! trace through the client methodology must recover most of the
//! ground-truth supply and demand (the paper captured 97% of cars and
//! 95% of deaths).

use surgescope::city::{CarType, CityModel};
use surgescope::core::estimate::EstimatorConfig;
use surgescope::core::Campaign;
use surgescope::taxi::TraceGenerator;

#[test]
fn taxi_methodology_validation() {
    let city = CityModel::manhattan_midtown();
    let trace = TraceGenerator { taxis: 150, days: 1, ..Default::default() }
        .generate(&city, 555);
    let (est, truth) = Campaign::run_taxi(
        &trace,
        city.measurement_region.clone(),
        150.0,
        24,
        555,
        EstimatorConfig::default(),
    );

    let sum32 = |v: &[u32]| v.iter().map(|&x| x as u64).sum::<u64>() as f64;
    let measured_supply = sum32(est.supply_series(CarType::UberT));
    let true_supply = sum32(&truth.supply);
    let measured_deaths = sum32(est.death_series(CarType::UberT));
    let true_demand = sum32(&truth.demand);

    assert!(true_supply > 0.0 && true_demand > 0.0, "degenerate trace");

    let supply_capture = measured_supply / true_supply;
    assert!(
        (0.85..=1.15).contains(&supply_capture),
        "supply capture {supply_capture:.2} (paper: ~0.97)"
    );

    let death_capture = measured_deaths / true_demand;
    assert!(
        (0.6..=1.3).contains(&death_capture),
        "death capture {death_capture:.2} (paper: ~0.95)"
    );
}

#[test]
fn sparse_client_lattice_underestimates() {
    // The calibration rationale (§3.4): clients spaced too far apart see
    // only a subset of cars. A 700 m lattice must capture clearly less
    // supply than a 150 m one.
    let city = CityModel::manhattan_midtown();
    let trace = TraceGenerator { taxis: 150, days: 1, ..Default::default() }
        .generate(&city, 556);
    let run = |spacing: f64| {
        let (est, _) = Campaign::run_taxi(
            &trace,
            city.measurement_region.clone(),
            spacing,
            24,
            556,
            EstimatorConfig::default(),
        );
        est.supply_series(CarType::UberT)
            .iter()
            .map(|&x| x as u64)
            .sum::<u64>() as f64
    };
    let dense = run(150.0);
    let sparse = run(700.0);
    assert!(
        sparse < dense,
        "sparse lattice ({sparse}) should see less than dense ({dense})"
    );
}
